// Open-loop foreground traffic generator (DESIGN.md §10).
//
// Simulates the client workload a production cluster keeps serving
// while repair runs: seeded open-loop arrivals (Poisson), a Zipfian
// read/write mix over the erasure-coded population, and degraded reads
// — an op that targets a chunk on a degraded or crashed node fetches k
// helper chunks and decodes through the real codec paths instead.
// Every op charges the SAME per-node resources repair uses (the
// ChunkStore disk bucket via charge_io, the InprocTransport NIC
// buckets via charge_tx/charge_rx), so foreground and repair contend
// byte-for-byte rather than by assumption.
//
// Open-loop means arrivals are scheduled, not admitted: an op's
// latency is measured from its scheduled arrival to completion, so
// queueing delay during repair bursts is visible in the percentiles
// (no coordinated omission). The workload implements PressureSource —
// agents piggyback its per-node p99/throughput onto kPong, closing the
// throttler's feedback loop.
//
// Placement is snapshotted at construction: the generator keeps
// hitting the original chunk homes for the whole run (repair moves
// copies, it does not retarget live traffic mid-run).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "agent/repair_budget.h"
#include "agent/testbed.h"
#include "ec/erasure_code.h"
#include "load/latency_window.h"
#include "load/zipf.h"
#include "util/units.h"

namespace fastpr::load {

struct WorkloadOptions {
  /// Scheduled arrival rate across all generator threads.
  double ops_per_sec = 200;
  double read_fraction = 0.9;
  /// Bytes moved per op (clamped to the chunk size).
  int64_t op_bytes = 64 * kKiB;
  /// Zipfian skew over the chunk population (0 = uniform, 0.99 = YCSB).
  double zipf_theta = 0.99;
  int threads = 4;
  uint64_t seed = 1;
  /// Degraded reads actually decode and byte-check against the oracle
  /// (slower); false charges the helper I/O without moving data.
  bool verify_degraded = true;
  size_t window_capacity = 1 << 14;
};

struct WorkloadStats {
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t degraded_reads = 0;
  /// Ops that could not complete (helpers unreadable / unrepairable).
  int64_t failed_ops = 0;
  /// Degraded reads whose decoded bytes mismatched the oracle.
  int64_t verify_failures = 0;
  double p50_seconds = 0;
  double p99_seconds = 0;
  double p999_seconds = 0;
  double achieved_ops_per_sec = 0;
};

class ForegroundWorkload final : public agent::PressureSource {
 public:
  ForegroundWorkload(agent::Testbed& testbed, const ec::ErasureCode& code,
                     const WorkloadOptions& options);
  ~ForegroundWorkload() override;  // stops and joins

  void start();
  void stop();

  /// Marks a node degraded: reads of its chunks go down the k-helper
  /// decode path from now on. Crashed nodes (FaultyTransport) are
  /// detected automatically; this is for the still-alive STF node.
  void set_degraded(cluster::NodeId node);

  /// PressureSource: the per-node feedback agents report upstream.
  agent::NodePressure sample(cluster::NodeId node) override;

  WorkloadStats stats() const;

 private:
  struct PerNode {
    explicit PerNode(size_t capacity) : window(capacity) {}
    LatencyWindow window;
    std::atomic<int64_t> bytes{0};
    std::atomic<bool> degraded{false};
  };

  void worker(int index);
  bool node_degraded(cluster::NodeId node) const;
  /// Runs one op; fills `touched` with every node it charged. Returns
  /// false if the op failed outright.
  bool run_op(Rng& rng, std::vector<cluster::NodeId>& touched);
  bool run_degraded_read(cluster::ChunkRef chunk, int64_t slice,
                         std::vector<cluster::NodeId>& touched);

  agent::Testbed& testbed_;
  const ec::ErasureCode& code_;
  const WorkloadOptions options_;

  std::vector<cluster::ChunkRef> chunks_;     // shuffled chunk universe
  int64_t chunk_bytes_ = 0;
  std::vector<std::vector<cluster::NodeId>> stripe_nodes_;  // placement
  ZipfSampler zipf_;
  std::vector<std::unique_ptr<PerNode>> nodes_;
  LatencyWindow global_;

  std::atomic<int64_t> reads_{0};
  std::atomic<int64_t> writes_{0};
  std::atomic<int64_t> degraded_reads_{0};
  std::atomic<int64_t> failed_ops_{0};
  std::atomic<int64_t> verify_failures_{0};
  std::atomic<int64_t> start_us_{0};
  std::atomic<bool> running_{false};
  std::vector<std::thread> threads_;
};

}  // namespace fastpr::load
