// Trace-driven cluster lifetime simulation.
//
// The paper's motivation (§I, §II-B): minimizing repair time shrinks
// the *window of vulnerability* — the interval during which a failed
// node's stripes run with reduced redundancy and a correlated second
// failure can destroy data. This module plays years of cluster life:
// nodes fail as a Poisson process, a predictor flags a configurable
// fraction of failures with a random lead time, FastPR repairs flagged
// nodes proactively and the ReactivePlanner cleans up everything the
// predictor missed (or didn't finish in time). It reports vulnerability
// time, degraded-stripe exposure, data-loss events and repair traffic —
// with the predictive policy ON or OFF, so benches can quantify what
// prediction accuracy buys.
#pragma once

#include <cstdint>

#include "core/cost_model.h"
#include "util/stats.h"

namespace fastpr::lifetime {

struct LifetimeConfig {
  int num_nodes = 100;
  int n = 9;
  int k = 6;
  int num_stripes = 1000;
  double chunk_bytes = 0;
  double disk_bw = 0;
  double net_bw = 0;
  int hot_standby = 3;
  /// Only kScattered is supported (a spare taking over a node's
  /// identity is beyond the placement model).
  core::Scenario scenario = core::Scenario::kScattered;

  double sim_days = 365.0;
  /// Per-node exponential MTBF; cluster failure rate = nodes / mtbf.
  double node_mtbf_days = 1000.0;
  /// Fraction of failures the predictor flags in advance.
  double prediction_recall = 0.95;
  /// Flag precedes the failure by Uniform[min, max] days.
  double lead_days_min = 2.0;
  double lead_days_max = 10.0;
  /// Cluster-wide false-alarm rate (flagged nodes that never fail; they
  /// are still repaired, per the paper's assumption 2).
  double false_alarms_per_year = 2.0;
  /// Policy switch: false disables proactive repair entirely (pure
  /// reactive baseline).
  bool predictive_enabled = true;

  uint64_t seed = 1;
};

struct LifetimeReport {
  int failures = 0;
  int predicted = 0;          // flagged with enough lead to plan
  int completed_in_time = 0;  // proactive repair done before the failure
  int false_alarms = 0;
  int data_loss_stripes = 0;  // stripes that exceeded n-k concurrent losses

  /// Seconds during which some failed node's data had reduced
  /// redundancy (per failure; 0 when proactive repair finished early).
  double vulnerability_seconds = 0;
  /// Same, weighted by the number of stripes exposed.
  double degraded_stripe_seconds = 0;
  /// Chunks moved over the network for all repairs.
  long repair_traffic_chunks = 0;

  Summary repair_seconds;  // per-repair completion times

  double mean_vulnerability_per_failure() const {
    return failures == 0 ? 0.0 : vulnerability_seconds / failures;
  }
};

LifetimeReport simulate_lifetime(const LifetimeConfig& config);

}  // namespace fastpr::lifetime
