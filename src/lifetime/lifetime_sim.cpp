#include "lifetime/lifetime_sim.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "cluster/rebalancer.h"
#include "core/fastpr.h"
#include "core/reactive.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/rng.h"

namespace fastpr::lifetime {

namespace {

using cluster::ChunkRef;
using cluster::NodeId;

constexpr double kSecondsPerDay = 86400.0;

struct FailureEvent {
  double day = 0;
  NodeId node = cluster::kNoNode;
  bool predicted = false;
  double flag_day = 0;      // meaningful when predicted
  bool false_alarm = false;  // flagged but never fails
};

/// While a failure is unrepaired, its stripes run degraded; overlap of
/// concurrently degraded nodes beyond n-k losses is data loss.
struct DegradedWindow {
  double until_day = 0;
  std::unordered_set<int32_t> stripes;
};

}  // namespace

LifetimeReport simulate_lifetime(const LifetimeConfig& config) {
  FASTPR_CHECK(config.num_nodes >= config.n + 1);
  FASTPR_CHECK(config.node_mtbf_days > 0);
  FASTPR_CHECK_MSG(config.scenario == core::Scenario::kScattered,
                   "lifetime simulation models scattered repair (spares "
                   "taking over service is out of scope)");
  Rng rng(config.seed);

  auto layout = cluster::StripeLayout::random(
      config.num_nodes, config.n, config.num_stripes, rng);
  cluster::ClusterState state(
      config.num_nodes, config.hot_standby,
      cluster::BandwidthProfile{config.disk_bw, config.net_bw});

  // --- Build the event schedule. ---
  std::vector<FailureEvent> events;
  const double cluster_rate =
      static_cast<double>(config.num_nodes) / config.node_mtbf_days;
  double day = 0;
  for (;;) {
    day += -std::log(rng.uniform_real(1e-12, 1.0)) / cluster_rate;
    if (day > config.sim_days) break;
    FailureEvent ev;
    ev.day = day;
    ev.node = static_cast<NodeId>(rng.uniform(0, config.num_nodes - 1));
    ev.predicted = config.predictive_enabled &&
                   rng.chance(config.prediction_recall);
    if (ev.predicted) {
      ev.flag_day = day - rng.uniform_real(config.lead_days_min,
                                           config.lead_days_max);
    }
    events.push_back(ev);
  }
  // False alarms: flagged nodes that never fail (repaired anyway).
  if (config.predictive_enabled && config.false_alarms_per_year > 0) {
    double fa_day = 0;
    const double fa_rate = config.false_alarms_per_year / 365.0;
    for (;;) {
      fa_day += -std::log(rng.uniform_real(1e-12, 1.0)) / fa_rate;
      if (fa_day > config.sim_days) break;
      FailureEvent ev;
      ev.day = fa_day;
      ev.node = static_cast<NodeId>(rng.uniform(0, config.num_nodes - 1));
      ev.predicted = true;
      ev.false_alarm = true;
      ev.flag_day = fa_day;
      events.push_back(ev);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FailureEvent& a, const FailureEvent& b) {
              return a.day < b.day;
            });

  // --- Simulation helpers. ---
  sim::SimParams sp;
  sp.chunk_bytes = config.chunk_bytes;
  sp.disk_bw = config.disk_bw;
  sp.net_bw = config.net_bw;
  sp.k_repair = config.k;
  sp.hot_standby = config.hot_standby;
  sp.scenario = config.scenario;

  LifetimeReport report;
  std::map<NodeId, DegradedWindow> degraded;  // node → exposure window
  std::unordered_set<int32_t> lost_stripes;

  const auto account_overlap = [&](NodeId node, double at_day) {
    // Data loss when a stripe accumulates more than n-k concurrently
    // degraded members.
    std::unordered_map<int32_t, int> stripe_hits;
    for (ChunkRef c : layout.chunks_on(node)) stripe_hits[c.stripe] = 1;
    for (const auto& [other, window] : degraded) {
      if (other == node || window.until_day <= at_day) continue;
      for (int32_t s : window.stripes) {
        const auto it = stripe_hits.find(s);
        if (it != stripe_hits.end()) ++it->second;
      }
    }
    const int tolerance = config.n - config.k;
    for (const auto& [stripe, hits] : stripe_hits) {
      if (hits > tolerance && lost_stripes.insert(stripe).second) {
        ++report.data_loss_stripes;
      }
    }
  };

  const auto apply_plan = [&](const core::RepairPlan& plan) {
    for (const auto& round : plan.rounds) {
      for (const auto& t : round.migrations) {
        layout.move_chunk(t.chunk, t.dst);
      }
      for (const auto& t : round.reconstructions) {
        if (state.is_hot_standby(t.dst)) continue;  // off-layout spare
        layout.move_chunk(t.chunk, t.dst);
      }
    }
  };

  core::PlannerOptions popts;
  popts.scenario = config.scenario;
  popts.k_repair = config.k;
  popts.chunk_bytes = config.chunk_bytes;
  // Cap Algorithm 1's planning cost per repair (§IV-D chunk grouping).
  popts.recon.chunk_group_size = 128;

  core::ReactiveOptions ropts;
  ropts.scenario = config.scenario;
  ropts.k_repair = config.k;
  ropts.chunk_bytes = config.chunk_bytes;
  ropts.recon.chunk_group_size = 128;

  // --- Play the schedule. ---
  for (const auto& ev : events) {
    if (layout.load(ev.node) == 0) continue;  // empty node: nothing to do

    if (ev.false_alarm) ++report.false_alarms;
    if (!ev.false_alarm) ++report.failures;

    if (ev.predicted) {
      if (!ev.false_alarm) ++report.predicted;
      state.set_health(ev.node, cluster::NodeHealth::kSoonToFail);
      core::FastPrPlanner planner(layout, state, popts);
      const auto plan = planner.plan_fastpr();
      const auto timing = sim::simulate(plan, sp);
      report.repair_traffic_chunks += timing.repair_traffic_chunks;
      report.repair_seconds.add(timing.total_time);

      const double lead_seconds =
          ev.false_alarm ? timing.total_time
                         : (ev.day - ev.flag_day) * kSecondsPerDay;
      if (timing.total_time <= lead_seconds) {
        // Proactive repair finished before the failure: no exposure.
        if (!ev.false_alarm) ++report.completed_in_time;
      } else {
        // Late: the un-repaired fraction is exposed from the failure
        // until the remaining chunks finish (still proactive-rate).
        const double exposed =
            timing.total_time - lead_seconds;
        report.vulnerability_seconds += exposed;
        report.degraded_stripe_seconds +=
            exposed * layout.load(ev.node) *
            (1.0 - lead_seconds / timing.total_time);
        DegradedWindow window;
        window.until_day = ev.day + exposed / kSecondsPerDay;
        for (ChunkRef c : layout.chunks_on(ev.node)) {
          window.stripes.insert(c.stripe);
        }
        degraded[ev.node] = std::move(window);
        account_overlap(ev.node, ev.day);
      }
      apply_plan(plan);
      // Node survived (false alarm) or is replaced; either way it
      // rejoins empty and healthy.
      state.set_health(ev.node, cluster::NodeHealth::kHealthy);
    } else {
      // Unpredicted: reactive repair after the fact, full exposure.
      state.set_health(ev.node, cluster::NodeHealth::kFailed);
      core::ReactivePlanner reactive(layout, state, ropts);
      const auto result = reactive.plan({ev.node});
      const auto timing = sim::simulate(result.plan, sp);
      report.repair_traffic_chunks += timing.repair_traffic_chunks;
      report.repair_seconds.add(timing.total_time);
      report.vulnerability_seconds += timing.total_time;
      report.degraded_stripe_seconds +=
          timing.total_time * layout.load(ev.node);

      DegradedWindow window;
      window.until_day = ev.day + timing.total_time / kSecondsPerDay;
      for (ChunkRef c : layout.chunks_on(ev.node)) {
        window.stripes.insert(c.stripe);
      }
      degraded[ev.node] = std::move(window);
      account_overlap(ev.node, ev.day);

      for (ChunkRef c : result.unrecoverable) {
        if (lost_stripes.insert(c.stripe).second) {
          ++report.data_loss_stripes;
        }
      }
      apply_plan(result.plan);
      state.set_health(ev.node, cluster::NodeHealth::kHealthy);
    }

    // Background rebalance restores a uniform spread (§II-B).
    cluster::rebalance(layout, state.healthy_storage_nodes(),
                       /*tolerance=*/4);
    layout.check_invariants();
  }
  return report;
}

}  // namespace fastpr::lifetime
