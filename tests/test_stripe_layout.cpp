// Stripe placement metadata: distinctness invariant, indices, moves.
#include "cluster/stripe_layout.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace fastpr::cluster {
namespace {

TEST(StripeLayout, AddStripeAndQueries) {
  StripeLayout layout(6, 3);
  const StripeId s = layout.add_stripe({1, 3, 5});
  EXPECT_EQ(layout.num_stripes(), 1);
  EXPECT_EQ(layout.node_of({s, 0}), 1);
  EXPECT_EQ(layout.node_of({s, 1}), 3);
  EXPECT_EQ(layout.node_of({s, 2}), 5);
  EXPECT_TRUE(layout.stripe_uses_node(s, 3));
  EXPECT_FALSE(layout.stripe_uses_node(s, 0));
  EXPECT_EQ(layout.load(3), 1);
  EXPECT_EQ(layout.load(0), 0);
  layout.check_invariants();
}

TEST(StripeLayout, RejectsDuplicateNodes) {
  StripeLayout layout(5, 3);
  EXPECT_THROW(layout.add_stripe({0, 0, 1}), CheckFailure);
}

TEST(StripeLayout, RejectsWrongWidth) {
  StripeLayout layout(5, 3);
  EXPECT_THROW(layout.add_stripe({0, 1}), CheckFailure);
}

TEST(StripeLayout, RejectsStripeWiderThanCluster) {
  EXPECT_THROW(StripeLayout(2, 3), CheckFailure);
}

class RandomLayoutTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLayoutTest, RandomPlacementInvariants) {
  const int num_nodes = GetParam();
  Rng rng(9 + num_nodes);
  const auto layout = StripeLayout::random(num_nodes, 5, 200, rng);
  layout.check_invariants();
  EXPECT_EQ(layout.total_chunks(), 1000);
  // Load is roughly balanced: binomial placement keeps every node
  // within mean ± 6σ (σ ≈ sqrt(mean)) with overwhelming probability.
  const double expected = 1000.0 / num_nodes;
  const double slack = 6.0 * std::sqrt(expected);
  for (NodeId node = 0; node < num_nodes; ++node) {
    EXPECT_GT(layout.load(node), expected - slack);
    EXPECT_LT(layout.load(node), expected + slack);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomLayoutTest,
                         ::testing::Values(10, 25, 60, 100));

TEST(StripeLayout, MoveChunkUpdatesBothIndices) {
  StripeLayout layout(6, 3);
  const StripeId s = layout.add_stripe({0, 1, 2});
  layout.move_chunk({s, 1}, 4);
  EXPECT_EQ(layout.node_of({s, 1}), 4);
  EXPECT_EQ(layout.load(1), 0);
  EXPECT_EQ(layout.load(4), 1);
  EXPECT_TRUE(layout.stripe_uses_node(s, 4));
  EXPECT_FALSE(layout.stripe_uses_node(s, 1));
  layout.check_invariants();
}

TEST(StripeLayout, MoveChunkRefusesColocation) {
  StripeLayout layout(6, 3);
  const StripeId s = layout.add_stripe({0, 1, 2});
  EXPECT_THROW(layout.move_chunk({s, 0}, 2), CheckFailure);
}

TEST(StripeLayout, MoveChunkToSameNodeIsNoop) {
  StripeLayout layout(6, 3);
  const StripeId s = layout.add_stripe({0, 1, 2});
  layout.move_chunk({s, 0}, 0);
  EXPECT_EQ(layout.load(0), 1);
  layout.check_invariants();
}

TEST(StripeLayout, ChunksOnNodeTracksMembership) {
  StripeLayout layout(4, 2);
  const StripeId a = layout.add_stripe({0, 1});
  const StripeId b = layout.add_stripe({0, 2});
  const auto& on0 = layout.chunks_on(0);
  ASSERT_EQ(on0.size(), 2u);
  EXPECT_TRUE((on0[0] == ChunkRef{a, 0} && on0[1] == ChunkRef{b, 0}) ||
              (on0[0] == ChunkRef{b, 0} && on0[1] == ChunkRef{a, 0}));
}

TEST(StripeLayout, RandomIsDeterministicPerSeed) {
  Rng rng1(42), rng2(42);
  const auto a = StripeLayout::random(20, 4, 50, rng1);
  const auto b = StripeLayout::random(20, 4, 50, rng2);
  for (StripeId s = 0; s < 50; ++s) {
    EXPECT_EQ(a.stripe_nodes(s), b.stripe_nodes(s));
  }
}

}  // namespace
}  // namespace fastpr::cluster
