// End-to-end: SMART prediction flags the STF node → FastPR plans →
// simulation/testbed repair → rebalance — the full predictive-repair
// lifecycle the paper describes.
#include <gtest/gtest.h>

#include "agent/testbed.h"
#include "cluster/rebalancer.h"
#include "core/fastpr.h"
#include "ec/rs_code.h"
#include "predict/predictor.h"
#include "predict/trace_generator.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

namespace fastpr {
namespace {

TEST(Integration, PredictPlanSimulateRebalance) {
  const int num_nodes = 40;
  Rng rng(2026);

  // 1. One disk per node; exactly one disk is degrading.
  predict::TraceConfig tcfg;
  tcfg.num_disks = num_nodes;
  tcfg.failure_fraction = 1.0 / num_nodes;
  tcfg.silent_failure_fraction = 0.0;
  const auto traces = predict::generate_traces(tcfg, rng);
  double failure_day = 0;
  int failing = -1;
  for (const auto& t : traces) {
    if (t.will_fail) {
      failing = t.disk_id;
      failure_day = t.failure_day;
    }
  }
  ASSERT_NE(failing, -1);

  // 2. The predictor flags it before the failure.
  const predict::LogisticPredictor predictor;
  const int stf = predict::select_stf_disk(predictor, traces,
                                           failure_day - 2.0);
  ASSERT_EQ(stf, failing);

  // 3. Plan and simulate the predictive repair.
  auto layout = cluster::StripeLayout::random(num_nodes, 9, 300, rng);
  cluster::ClusterState state(
      num_nodes, 3, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);

  core::PlannerOptions popts;
  popts.scenario = core::Scenario::kScattered;
  popts.k_repair = 6;
  popts.chunk_bytes = static_cast<double>(MB(64));
  core::FastPrPlanner planner(layout, state, popts);
  const auto plan = planner.plan_fastpr();
  core::validate_plan(plan, layout, state, 6);

  sim::SimParams sparams;
  sparams.chunk_bytes = popts.chunk_bytes;
  sparams.disk_bw = MBps(100);
  sparams.net_bw = Gbps(1);
  sparams.k_repair = 6;
  sparams.scenario = core::Scenario::kScattered;
  const auto fastpr_time = sim::simulate(plan, sparams);
  const auto reactive_time =
      sim::simulate(planner.plan_reconstruction_only(), sparams);
  EXPECT_LE(fastpr_time.total_time, reactive_time.total_time * 1.001);

  // 4. Apply the plan, retire the node, rebalance the survivors.
  for (const auto& round : plan.rounds) {
    for (const auto& t : round.migrations) {
      layout.move_chunk(t.chunk, t.dst);
    }
    for (const auto& t : round.reconstructions) {
      layout.move_chunk(t.chunk, t.dst);
    }
  }
  EXPECT_EQ(layout.load(stf), 0);
  state.set_health(stf, cluster::NodeHealth::kFailed);

  const auto survivors = state.healthy_storage_nodes();
  cluster::rebalance(layout, survivors);
  layout.check_invariants();
  // The retired node must not have been given load back.
  EXPECT_EQ(layout.load(stf), 0);
}

TEST(Integration, TestbedFastPrBeatsMigrationOnlyWallClock) {
  // Shaped testbed: FastPR's wall-clock repair should beat
  // migration-only (the STF uplink bottleneck is real here).
  // EC2-like regime (paper §VI-B): network much faster than disk, so
  // reconstruction's parallel reads beat the STF node's serial disk.
  ec::RsCode code(6, 4);
  agent::TestbedOptions opts;
  opts.num_storage = 20;
  opts.num_standby = 2;
  opts.disk_bytes_per_sec = MBps(40);
  opts.net_bytes_per_sec = MBps(400);
  opts.chunk_bytes = 2 * kMiB;
  opts.packet_bytes = 256 * kKiB;
  opts.num_stripes = 60;
  opts.seed = 9;

  double fastpr_secs = 0, migration_secs = 0;
  {
    agent::Testbed tb(opts, code);
    tb.flag_stf();
    auto planner = tb.make_planner(core::Scenario::kScattered);
    const auto plan = planner.plan_fastpr();
    const auto report = tb.execute(plan);
    ASSERT_TRUE(report.success);
    ASSERT_TRUE(tb.verify(plan));
    fastpr_secs = report.total_seconds;
  }
  {
    agent::Testbed tb(opts, code);
    tb.flag_stf();
    auto planner = tb.make_planner(core::Scenario::kScattered);
    const auto plan = planner.plan_migration_only();
    const auto report = tb.execute(plan);
    ASSERT_TRUE(report.success);
    migration_secs = report.total_seconds;
  }
#ifdef FASTPR_SANITIZERS_ENABLED
  // Sanitizer overhead scales with thread count, so FastPR's parallel
  // pipeline slows far more than the serial migration path and the
  // wall-clock ordering inverts. Both repairs above still ran (and were
  // verified) for sanitizer coverage; only the timing claim is void.
  GTEST_SKIP() << "wall-clock comparison is meaningless under sanitizers "
               << "(fastpr=" << fastpr_secs << "s migration="
               << migration_secs << "s)";
#else
  EXPECT_LT(fastpr_secs, migration_secs);
#endif
}

TEST(Integration, FalseAlarmStillRepairsSafely) {
  // §II-B assumption 2: even a false-alarm STF node is proactively
  // repaired. The repair must complete and preserve integrity although
  // the node never actually fails.
  ec::RsCode code(6, 4);
  agent::TestbedOptions opts;
  opts.num_storage = 12;
  opts.num_standby = 2;
  opts.chunk_bytes = 64 * kKiB;
  opts.packet_bytes = 16 * kKiB;
  opts.num_stripes = 25;
  opts.seed = 10;
  agent::Testbed tb(opts, code);
  tb.flag_stf();  // "false alarm": we never kill it
  auto planner = tb.make_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_fastpr();
  const auto report = tb.execute(plan);
  EXPECT_TRUE(report.success);
  EXPECT_TRUE(tb.verify(plan));
}

}  // namespace
}  // namespace fastpr
