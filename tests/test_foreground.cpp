// Foreground traffic generator (DESIGN.md §10): Zipf sampling, exact
// sliding-window percentiles, the open-loop workload against a live
// testbed, and degraded reads decoding byte-exactly through the codec.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "agent/testbed.h"
#include "ec/rs_code.h"
#include "load/foreground.h"
#include "load/latency_window.h"
#include "load/zipf.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/units.h"

namespace fastpr {
namespace {

TEST(ZipfSampler, DeterministicForSeed) {
  load::ZipfSampler zipf(100, 0.99);
  Rng a(7), b(7);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(zipf(a), zipf(b));
}

TEST(ZipfSampler, SkewFavorsLowRanks) {
  load::ZipfSampler zipf(100, 0.99);
  Rng rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20'000; ++i) {
    const size_t v = zipf(rng);
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  // YCSB-grade skew: rank 0 dwarfs the median rank.
  EXPECT_GT(counts[0], 5 * std::max(1, counts[50]));
  // And the tail is still reachable.
  int tail = 0;
  for (size_t i = 50; i < 100; ++i) tail += counts[i];
  EXPECT_GT(tail, 0);
}

TEST(ZipfSampler, ThetaZeroIsUniform) {
  load::ZipfSampler zipf(10, 0.0);
  Rng rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10'000; ++i) ++counts[zipf(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(ZipfSampler, RejectsEmptyUniverse) {
  EXPECT_THROW(load::ZipfSampler(0, 0.99), CheckFailure);
}

TEST(LatencyWindow, ExactPercentiles) {
  load::LatencyWindow w(128);
  EXPECT_DOUBLE_EQ(w.percentile(0.99), 0.0);  // empty
  // 1..100 ms in nanoseconds.
  for (int i = 1; i <= 100; ++i) w.observe(int64_t{i} * 1'000'000);
  EXPECT_EQ(w.count(), 100);
  EXPECT_NEAR(w.percentile(0.0), 0.001, 1e-9);
  EXPECT_NEAR(w.percentile(0.50), 0.050, 0.002);
  EXPECT_NEAR(w.percentile(0.99), 0.099, 0.002);
  EXPECT_NEAR(w.percentile(1.0), 0.100, 1e-9);
}

TEST(LatencyWindow, RingKeepsOnlyRecentSamples) {
  load::LatencyWindow w(16);
  for (int i = 0; i < 16; ++i) w.observe(1'000'000'000);  // 1 s each
  for (int i = 0; i < 16; ++i) w.observe(1'000'000);      // then 1 ms
  // The old 1 s samples have been overwritten: even the max is 1 ms.
  EXPECT_NEAR(w.percentile(1.0), 0.001, 1e-9);
  EXPECT_EQ(w.count(), 32);  // count is cumulative, window is not
}

class ForegroundWorkloadTest : public ::testing::Test {
 protected:
  agent::TestbedOptions testbed_options() {
    agent::TestbedOptions o;
    o.num_storage = 8;
    o.num_standby = 2;
    o.disk_bytes_per_sec = MBps(400);
    o.net_bytes_per_sec = MBps(400);
    o.chunk_bytes = 256 * kKiB;
    o.packet_bytes = 64 * kKiB;
    o.num_stripes = 8;
    o.seed = 11;
    return o;
  }
  ec::RsCode code_{6, 4};
};

TEST_F(ForegroundWorkloadTest, GeneratesMixAndMeasuresLatency) {
  agent::Testbed tb(testbed_options(), code_);
  load::WorkloadOptions wopts;
  wopts.ops_per_sec = 2000;
  wopts.read_fraction = 0.8;
  wopts.threads = 2;
  wopts.seed = 3;
  load::ForegroundWorkload fg(tb, code_, wopts);
  fg.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  fg.stop();
  const auto stats = fg.stats();
  EXPECT_GT(stats.reads, 0);
  EXPECT_GT(stats.writes, 0);
  EXPECT_EQ(stats.failed_ops, 0);
  EXPECT_EQ(stats.verify_failures, 0);
  EXPECT_GT(stats.achieved_ops_per_sec, 100);
  // Sub-µs ops can record 0 latency; the tail always shows scheduling
  // overshoot and bucket queueing.
  EXPECT_GE(stats.p50_seconds, 0);
  EXPECT_GT(stats.p99_seconds, 0);
  EXPECT_GE(stats.p999_seconds, stats.p99_seconds);
  EXPECT_GE(stats.p99_seconds, stats.p50_seconds);
}

TEST_F(ForegroundWorkloadTest, SamplesPerNodePressure) {
  agent::Testbed tb(testbed_options(), code_);
  load::WorkloadOptions wopts;
  wopts.ops_per_sec = 2000;
  wopts.threads = 2;
  load::ForegroundWorkload fg(tb, code_, wopts);
  fg.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  fg.stop();
  // With a Zipfian over every chunk and 8 nodes, a 300 ms burst at
  // 2000 op/s touches every node; each touched node has pressure.
  double total_fg = 0;
  int nodes_with_latency = 0;
  for (cluster::NodeId n = 0; n < 8; ++n) {
    const auto p = fg.sample(n);
    total_fg += p.fg_bytes_per_sec;
    if (p.p99_seconds > 0) ++nodes_with_latency;
  }
  EXPECT_GT(total_fg, 0);
  EXPECT_GT(nodes_with_latency, 4);
}

TEST_F(ForegroundWorkloadTest, DegradedReadsDecodeByteExactly) {
  agent::Testbed tb(testbed_options(), code_);
  const cluster::NodeId stf = tb.flag_stf();
  load::WorkloadOptions wopts;
  wopts.ops_per_sec = 2000;
  wopts.read_fraction = 1.0;  // reads only: maximize degraded hits
  wopts.threads = 2;
  wopts.verify_degraded = true;
  load::ForegroundWorkload fg(tb, code_, wopts);
  fg.set_degraded(stf);
  fg.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  fg.stop();
  const auto stats = fg.stats();
  // The STF node is the most loaded, so the Zipfian mix hits it often.
  EXPECT_GT(stats.degraded_reads, 0);
  EXPECT_EQ(stats.verify_failures, 0);
  EXPECT_EQ(stats.failed_ops, 0);
}

TEST_F(ForegroundWorkloadTest, StopIsIdempotentAndRestartable) {
  agent::Testbed tb(testbed_options(), code_);
  load::ForegroundWorkload fg(tb, code_, load::WorkloadOptions{});
  fg.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fg.stop();
  fg.stop();  // second stop is a no-op, not a crash
  const int64_t before = fg.stats().reads + fg.stats().writes;
  fg.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  fg.stop();
  EXPECT_GE(fg.stats().reads + fg.stats().writes, before);
}

}  // namespace
}  // namespace fastpr
