// GF(256) kernel dispatch: every supported SIMD variant must match the
// scalar reference bit-for-bit over random coefficients, unaligned
// offsets, and ragged lengths — the property that lets benches trust
// whatever kernel the host dispatches to.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "gf/gf256.h"
#include "util/check.h"
#include "util/rng.h"

namespace fastpr::gf {
namespace {

std::vector<Kernel> supported_kernels() {
  std::vector<Kernel> out;
  for (Kernel k :
       {Kernel::kScalar, Kernel::kSsse3, Kernel::kAvx2, Kernel::kGfni}) {
    if (kernel_supported(k)) out.push_back(k);
  }
  return out;
}

std::vector<uint8_t> random_bytes(Rng& rng, size_t n) {
  std::vector<uint8_t> out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng.uniform(0, 255));
  return out;
}

/// Scalar ground truth computed element-wise from the field tables —
/// independent of even the kScalar region-op code path.
void reference_mul_xor(uint8_t* dst, const uint8_t* src, uint8_t c,
                       size_t len) {
  for (size_t i = 0; i < len; ++i) dst[i] ^= mul(c, src[i]);
}

class GfKernels : public ::testing::TestWithParam<Kernel> {
 protected:
  void SetUp() override {
    if (!kernel_supported(GetParam())) {
      GTEST_SKIP() << kernel_name(GetParam()) << " not supported here";
    }
  }
};

TEST_P(GfKernels, MulRegionXorMatchesReference) {
  ScopedKernel pin(GetParam());
  Rng rng(0xA0 + static_cast<uint64_t>(GetParam()));
  // Lengths cross every tail-handling boundary: empty, sub-vector,
  // exactly 16/32, and ragged remainders up to 4 KiB.
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, size_t{15}, size_t{16},
                     size_t{17}, size_t{31}, size_t{32}, size_t{33},
                     size_t{100}, size_t{1000}, size_t{4096}, size_t{4099}}) {
    for (int trial = 0; trial < 8; ++trial) {
      const uint8_t c = static_cast<uint8_t>(rng.uniform(0, 255));
      const auto src = random_bytes(rng, len);
      auto dst = random_bytes(rng, len);
      auto want = dst;
      reference_mul_xor(want.data(), src.data(), c, len);
      mul_region_xor(dst.data(), src.data(), c, len);
      EXPECT_EQ(dst, want) << kernel_name(GetParam()) << " c=" << int(c)
                           << " len=" << len;
    }
  }
}

TEST_P(GfKernels, MulRegionMatchesReference) {
  ScopedKernel pin(GetParam());
  Rng rng(0xB0 + static_cast<uint64_t>(GetParam()));
  for (size_t len : {size_t{0}, size_t{1}, size_t{31}, size_t{32},
                     size_t{33}, size_t{4096}, size_t{4099}}) {
    // c = 0 and c = 1 exercise the memset/memmove fast paths.
    for (int c_int : {0, 1, 2, 0x1D, 0xFF}) {
      const uint8_t c = static_cast<uint8_t>(c_int);
      const auto src = random_bytes(rng, len);
      auto dst = random_bytes(rng, len);
      std::vector<uint8_t> want(len);
      for (size_t i = 0; i < len; ++i) want[i] = mul(c, src[i]);
      mul_region(dst.data(), src.data(), c, len);
      EXPECT_EQ(dst, want) << kernel_name(GetParam()) << " c=" << c_int
                           << " len=" << len;
    }
  }
}

TEST_P(GfKernels, MulRegionInPlaceScaling) {
  ScopedKernel pin(GetParam());
  Rng rng(0xB8 + static_cast<uint64_t>(GetParam()));
  for (int c_int : {0, 1, 0x1D}) {
    const uint8_t c = static_cast<uint8_t>(c_int);
    auto buf = random_bytes(rng, 1000);
    std::vector<uint8_t> want(buf.size());
    for (size_t i = 0; i < buf.size(); ++i) want[i] = mul(c, buf[i]);
    mul_region(buf.data(), buf.data(), c, buf.size());  // dst == src
    EXPECT_EQ(buf, want) << "c=" << c_int;
  }
}

TEST_P(GfKernels, XorRegionMatchesReference) {
  ScopedKernel pin(GetParam());
  Rng rng(0xC0 + static_cast<uint64_t>(GetParam()));
  for (size_t len : {size_t{0}, size_t{5}, size_t{16}, size_t{31},
                     size_t{32}, size_t{33}, size_t{4099}}) {
    const auto src = random_bytes(rng, len);
    auto dst = random_bytes(rng, len);
    auto want = dst;
    for (size_t i = 0; i < len; ++i) want[i] ^= src[i];
    xor_region(dst.data(), src.data(), len);
    EXPECT_EQ(dst, want) << kernel_name(GetParam()) << " len=" << len;
  }
}

TEST_P(GfKernels, UnalignedOffsetsMatchReference) {
  // SIMD loads/stores are unaligned-capable; prove it by running every
  // misalignment of dst and src relative to a 64-byte boundary.
  ScopedKernel pin(GetParam());
  Rng rng(0xD0 + static_cast<uint64_t>(GetParam()));
  const size_t len = 257;
  const auto src_base = random_bytes(rng, len + 64);
  const auto dst_base = random_bytes(rng, len + 64);
  for (size_t src_off : {size_t{0}, size_t{1}, size_t{3}, size_t{15},
                         size_t{17}, size_t{31}, size_t{33}}) {
    for (size_t dst_off : {size_t{0}, size_t{1}, size_t{31}, size_t{33}}) {
      const uint8_t c = static_cast<uint8_t>(rng.uniform(2, 255));
      auto dst = dst_base;
      auto want = dst_base;
      reference_mul_xor(want.data() + dst_off, src_base.data() + src_off, c,
                        len);
      mul_region_xor(dst.data() + dst_off, src_base.data() + src_off, c,
                     len);
      EXPECT_EQ(dst, want) << kernel_name(GetParam()) << " src+" << src_off
                           << " dst+" << dst_off;
    }
  }
}

TEST_P(GfKernels, DotRegionXorMatchesPerSourceLoop) {
  ScopedKernel pin(GetParam());
  Rng rng(0xE0 + static_cast<uint64_t>(GetParam()));
  // Source counts straddle the internal batch width (16), including the
  // empty dot; coefficients include 0 (skipped) and 1 (identity row).
  for (size_t num_src : {size_t{0}, size_t{1}, size_t{2}, size_t{6},
                         size_t{12}, size_t{16}, size_t{17}, size_t{40}}) {
    for (size_t len : {size_t{0}, size_t{1}, size_t{33}, size_t{1000},
                       size_t{4096}}) {
      std::vector<std::vector<uint8_t>> srcs;
      std::vector<uint8_t> coeffs;
      for (size_t j = 0; j < num_src; ++j) {
        srcs.push_back(random_bytes(rng, len));
        // Bias toward the special values so they appear in small sets.
        const int pick = static_cast<int>(rng.uniform(0, 9));
        coeffs.push_back(pick == 0 ? 0
                         : pick == 1
                             ? 1
                             : static_cast<uint8_t>(rng.uniform(2, 255)));
      }
      auto dst = random_bytes(rng, len);
      auto want = dst;
      for (size_t j = 0; j < num_src; ++j) {
        reference_mul_xor(want.data(), srcs[j].data(), coeffs[j], len);
      }
      std::vector<const uint8_t*> ptrs;
      for (const auto& s : srcs) ptrs.push_back(s.data());
      dot_region_xor(dst.data(), ptrs.data(), coeffs.data(), num_src, len);
      EXPECT_EQ(dst, want) << kernel_name(GetParam()) << " n=" << num_src
                           << " len=" << len;
    }
  }
}

TEST_P(GfKernels, DotRegionXorSingleSourceFastPath) {
  // One nonzero coefficient takes the fused mul_region_xor shortcut
  // (pure XOR at c == 1) — the exact shape of the chain-hop fold. The
  // result must stay bit-identical to the reference regardless of how
  // many zero rows pad the batch around the live one.
  ScopedKernel pin(GetParam());
  Rng rng(0xE8 + static_cast<uint64_t>(GetParam()));
  for (int c_int : {0, 1, 2, 0x1D, 0xFF}) {
    const uint8_t c = static_cast<uint8_t>(c_int);
    for (size_t len : {size_t{0}, size_t{1}, size_t{15}, size_t{33},
                       size_t{1000}, size_t{4099}}) {
      // num_src = 1 (the chain hop), and a padded batch whose other
      // coefficients are all zero (degenerates to the same fast path).
      for (size_t num_src : {size_t{1}, size_t{5}}) {
        std::vector<std::vector<uint8_t>> srcs;
        std::vector<uint8_t> coeffs(num_src, 0);
        for (size_t j = 0; j < num_src; ++j) {
          srcs.push_back(random_bytes(rng, len));
        }
        const size_t live = num_src / 2;
        coeffs[live] = c;
        auto dst = random_bytes(rng, len);
        auto want = dst;
        reference_mul_xor(want.data(), srcs[live].data(), c, len);
        std::vector<const uint8_t*> ptrs;
        for (const auto& s : srcs) ptrs.push_back(s.data());
        dot_region_xor(dst.data(), ptrs.data(), coeffs.data(), num_src,
                       len);
        EXPECT_EQ(dst, want) << kernel_name(GetParam()) << " c=" << c_int
                             << " len=" << len << " n=" << num_src;
      }
    }
  }
}

TEST_P(GfKernels, DotRegionXorSpanOverload) {
  ScopedKernel pin(GetParam());
  Rng rng(0xF0 + static_cast<uint64_t>(GetParam()));
  const size_t len = 515;
  std::vector<std::vector<uint8_t>> srcs;
  std::vector<std::span<const uint8_t>> views;
  std::vector<uint8_t> coeffs;
  for (size_t j = 0; j < 6; ++j) {
    srcs.push_back(random_bytes(rng, len));
    coeffs.push_back(static_cast<uint8_t>(rng.uniform(0, 255)));
  }
  for (const auto& s : srcs) views.emplace_back(s);
  std::vector<uint8_t> dst(len, 0);
  std::vector<uint8_t> want(len, 0);
  for (size_t j = 0; j < srcs.size(); ++j) {
    reference_mul_xor(want.data(), srcs[j].data(), coeffs[j], len);
  }
  dot_region_xor(std::span<uint8_t>(dst),
                 std::span<const std::span<const uint8_t>>(views), coeffs);
  EXPECT_EQ(dst, want);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, GfKernels,
                         ::testing::Values(Kernel::kScalar, Kernel::kSsse3,
                                           Kernel::kAvx2, Kernel::kGfni),
                         [](const auto& info) {
                           return std::string(kernel_name(info.param));
                         });

TEST(GfKernelDispatch, NamesRoundTrip) {
  for (Kernel k : supported_kernels()) {
    const auto parsed = parse_kernel(kernel_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_kernel("avx512").has_value());
  EXPECT_FALSE(parse_kernel("").has_value());
}

TEST(GfKernelDispatch, BestSupportedIsSupportedAndActive) {
  EXPECT_TRUE(kernel_supported(best_supported_kernel()));
  EXPECT_TRUE(kernel_supported(Kernel::kScalar));
  // active_kernel() always names something this host can run.
  EXPECT_TRUE(kernel_supported(active_kernel()));
}

TEST(GfKernelDispatch, ForceKernelSticksAndRestores) {
  const Kernel before = active_kernel();
  {
    ScopedKernel pin(Kernel::kScalar);
    EXPECT_EQ(active_kernel(), Kernel::kScalar);
  }
  EXPECT_EQ(active_kernel(), before);
}

}  // namespace
}  // namespace fastpr::gf
