// Planner facade: all three strategies produce structurally valid plans
// in both scenarios across random clusters (validate_plan enforces the
// §IV invariants), plus FastPR-specific shape checks.
#include "core/fastpr.h"

#include <gtest/gtest.h>

#include "core/repair_plan.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/units.h"

namespace fastpr::core {
namespace {

using cluster::ClusterState;
using cluster::NodeId;
using cluster::StripeLayout;

struct World {
  StripeLayout layout;
  ClusterState state;
  NodeId stf;
};

World make_world(int nodes, int n, int stripes, Scenario scenario,
                 uint64_t seed, int standby = 3) {
  Rng rng(seed);
  World w{StripeLayout::random(nodes, n, stripes, rng),
          ClusterState(nodes, standby,
                       cluster::BandwidthProfile{MBps(100), Gbps(1)}),
          0};
  (void)scenario;
  for (NodeId node = 1; node < nodes; ++node) {
    if (w.layout.load(node) > w.layout.load(w.stf)) w.stf = node;
  }
  w.state.set_health(w.stf, cluster::NodeHealth::kSoonToFail);
  return w;
}

PlannerOptions options_for(Scenario scenario, int k) {
  PlannerOptions opts;
  opts.scenario = scenario;
  opts.k_repair = k;
  opts.chunk_bytes = static_cast<double>(MB(64));
  return opts;
}

struct PlanParam {
  Scenario scenario;
  int nodes;
  int n;
  int k;
  uint64_t seed;
};

class PlannerValidityTest : public ::testing::TestWithParam<PlanParam> {};

TEST_P(PlannerValidityTest, AllStrategiesValid) {
  const auto p = GetParam();
  auto w = make_world(p.nodes, p.n, 300, p.scenario, p.seed);
  FastPrPlanner planner(w.layout, w.state, options_for(p.scenario, p.k));

  const auto fastpr = planner.plan_fastpr();
  validate_plan(fastpr, w.layout, w.state, p.k);

  const auto recon = planner.plan_reconstruction_only();
  validate_plan(recon, w.layout, w.state, p.k);
  EXPECT_EQ(recon.total_migrated(), 0);

  const auto migr = planner.plan_migration_only();
  validate_plan(migr, w.layout, w.state, p.k);
  EXPECT_EQ(migr.total_reconstructed(), 0);

  const int u = static_cast<int>(w.layout.chunks_on(w.stf).size());
  EXPECT_EQ(fastpr.total_repaired(), u);
  EXPECT_EQ(recon.total_repaired(), u);
  EXPECT_EQ(migr.total_repaired(), u);
}

INSTANTIATE_TEST_SUITE_P(
    Worlds, PlannerValidityTest,
    ::testing::Values(
        PlanParam{Scenario::kScattered, 40, 9, 6, 1},
        PlanParam{Scenario::kScattered, 100, 9, 6, 2},
        PlanParam{Scenario::kScattered, 30, 16, 12, 3},
        PlanParam{Scenario::kScattered, 25, 5, 3, 4},
        PlanParam{Scenario::kHotStandby, 40, 9, 6, 5},
        PlanParam{Scenario::kHotStandby, 100, 14, 10, 6},
        PlanParam{Scenario::kHotStandby, 25, 5, 3, 7}),
    [](const auto& info) {
      return std::string(info.param.scenario == Scenario::kScattered
                             ? "scattered"
                             : "hotstandby") +
             "_M" + std::to_string(info.param.nodes) + "_n" +
             std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k);
    });

TEST(FastPrPlanner, CouplesBothMethods) {
  auto w = make_world(50, 9, 400, Scenario::kScattered, 11);
  FastPrPlanner planner(w.layout, w.state,
                        options_for(Scenario::kScattered, 6));
  const auto plan = planner.plan_fastpr();
  EXPECT_GT(plan.total_migrated(), 0);
  EXPECT_GT(plan.total_reconstructed(), 0);
}

TEST(FastPrPlanner, FewerRoundsThanReconstructionOnly) {
  auto w = make_world(60, 9, 500, Scenario::kScattered, 12);
  FastPrPlanner planner(w.layout, w.state,
                        options_for(Scenario::kScattered, 6));
  const auto fastpr = planner.plan_fastpr();
  const auto recon = planner.plan_reconstruction_only();
  EXPECT_LT(fastpr.rounds.size(), recon.rounds.size());
}

TEST(FastPrPlanner, RequiresStfFlag) {
  Rng rng(13);
  auto layout = StripeLayout::random(20, 5, 50, rng);
  ClusterState state(20, 3, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  EXPECT_THROW(
      FastPrPlanner(layout, state, options_for(Scenario::kScattered, 3)),
      CheckFailure);
}

TEST(FastPrPlanner, HotStandbyRequiresSpares) {
  auto w = make_world(20, 5, 50, Scenario::kHotStandby, 14, /*standby=*/0);
  EXPECT_THROW(FastPrPlanner(w.layout, w.state,
                             options_for(Scenario::kHotStandby, 3)),
               CheckFailure);
}

TEST(FastPrPlanner, TinyClusterRejectedForScattered) {
  // M == n: no destination can take a repaired chunk without
  // co-locating.
  Rng rng(15);
  auto layout = StripeLayout::random(5, 5, 20, rng);
  ClusterState state(5, 0, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  state.set_health(0, cluster::NodeHealth::kSoonToFail);
  FastPrPlanner planner(layout, state, options_for(Scenario::kScattered, 3));
  EXPECT_THROW(planner.plan_fastpr(), CheckFailure);
}

TEST(FastPrPlanner, ReconStatsPopulated) {
  auto w = make_world(40, 9, 300, Scenario::kScattered, 16);
  FastPrPlanner planner(w.layout, w.state,
                        options_for(Scenario::kScattered, 6));
  (void)planner.plan_fastpr();
  EXPECT_GT(planner.recon_stats().match_calls, 0);
}

TEST(FastPrPlanner, CostModelReflectsCluster) {
  auto w = make_world(40, 9, 300, Scenario::kScattered, 17);
  FastPrPlanner planner(w.layout, w.state,
                        options_for(Scenario::kScattered, 6));
  const auto model = planner.cost_model();
  EXPECT_EQ(model.params().num_nodes, 40);
  EXPECT_EQ(model.params().stf_chunks,
            static_cast<int>(w.layout.chunks_on(w.stf).size()));
}

TEST(FastPrPlanner, PlanAppliesCleanlyToLayout) {
  // Applying every task's move keeps the layout invariants intact and
  // empties the STF node (scattered case).
  auto w = make_world(40, 9, 300, Scenario::kScattered, 18);
  FastPrPlanner planner(w.layout, w.state,
                        options_for(Scenario::kScattered, 6));
  const auto plan = planner.plan_fastpr();
  for (const auto& round : plan.rounds) {
    for (const auto& t : round.migrations) {
      w.layout.move_chunk(t.chunk, t.dst);
    }
    for (const auto& t : round.reconstructions) {
      w.layout.move_chunk(t.chunk, t.dst);
    }
  }
  w.layout.check_invariants();
  EXPECT_EQ(w.layout.load(w.stf), 0);
}

}  // namespace
}  // namespace fastpr::core
