// Reactive multi-failure repair: coverage, survivor-only sourcing,
// degraded LRC paths, unrecoverable detection.
#include "core/reactive.h"

#include "core/fastpr.h"

#include <gtest/gtest.h>

#include "ec/lrc_code.h"
#include "ec/rs_code.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

namespace fastpr::core {
namespace {

using cluster::ClusterState;
using cluster::NodeId;
using cluster::StripeLayout;

struct World {
  StripeLayout layout;
  ClusterState state;
};

World make_world(int nodes, int n, int stripes, uint64_t seed) {
  Rng rng(seed);
  return World{StripeLayout::random(nodes, n, stripes, rng),
               ClusterState(nodes, 2,
                            cluster::BandwidthProfile{MBps(100), Gbps(1)})};
}

ReactiveOptions rs_options(int k) {
  ReactiveOptions opts;
  opts.k_repair = k;
  opts.chunk_bytes = static_cast<double>(MB(64));
  return opts;
}

void fail_nodes(World& w, const std::vector<NodeId>& failed) {
  for (NodeId n : failed) {
    w.state.set_health(n, cluster::NodeHealth::kFailed);
  }
}

TEST(ReactivePlanner, SingleFailureFullCover) {
  auto w = make_world(30, 9, 300, 1);
  fail_nodes(w, {4});
  ReactivePlanner planner(w.layout, w.state, rs_options(6));
  const auto result = planner.plan({4});
  EXPECT_TRUE(result.unrecoverable.empty());
  EXPECT_EQ(result.plan.total_migrated(), 0);
  EXPECT_EQ(result.plan.total_reconstructed(), w.layout.load(4));
  validate_reactive_plan(result, w.layout, w.state, {4});
}

TEST(ReactivePlanner, DoubleFailureSharedStripes) {
  auto w = make_world(25, 9, 300, 2);
  fail_nodes(w, {1, 2});
  ReactivePlanner planner(w.layout, w.state, rs_options(6));
  const auto result = planner.plan({1, 2});
  // RS(9,6) tolerates 3 losses: everything is recoverable.
  EXPECT_TRUE(result.unrecoverable.empty());
  EXPECT_EQ(result.plan.total_reconstructed(),
            w.layout.load(1) + w.layout.load(2));
  validate_reactive_plan(result, w.layout, w.state, {1, 2});
}

TEST(ReactivePlanner, BeyondToleranceReportsUnrecoverable) {
  // n=3, k=2 tolerates one loss; kill two nodes that share stripes.
  StripeLayout layout(6, 3);
  layout.add_stripe({0, 1, 2});  // loses 2 chunks → unrecoverable
  layout.add_stripe({0, 3, 4});  // loses 1 → recoverable
  layout.add_stripe({3, 4, 5});  // untouched
  ClusterState state(6, 0, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  state.set_health(0, cluster::NodeHealth::kFailed);
  state.set_health(1, cluster::NodeHealth::kFailed);

  ReactivePlanner planner(layout, state, rs_options(2));
  const auto result = planner.plan({0, 1});
  EXPECT_EQ(result.unrecoverable.size(), 2u);  // both chunks of stripe 0
  for (const auto& c : result.unrecoverable) EXPECT_EQ(c.stripe, 0);
  EXPECT_EQ(result.plan.total_reconstructed(), 1);
  validate_reactive_plan(result, layout, state, {0, 1});
}

TEST(ReactivePlanner, LrcDegradedGroupUsesGlobalParity) {
  // LRC(4,2,2): losing a data chunk AND its local parity forces the
  // degraded path through the global parities.
  ec::LrcCode code(4, 2, 2);  // n = 8
  StripeLayout layout(10, 8);
  layout.add_stripe({0, 2, 3, 4, 1, 5, 6, 7});  // index 0 on node0,
                                                // local parity (idx 4) on node1
  ClusterState state(10, 0, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  state.set_health(0, cluster::NodeHealth::kFailed);
  state.set_health(1, cluster::NodeHealth::kFailed);

  ReactiveOptions opts;
  opts.k_repair = 2;
  opts.chunk_bytes = static_cast<double>(MB(64));
  opts.code = &code;
  ReactivePlanner planner(layout, state, opts);
  const auto result = planner.plan({0, 1});
  EXPECT_TRUE(result.unrecoverable.empty());
  EXPECT_EQ(result.plan.total_reconstructed(), 2);
  EXPECT_GE(result.degraded_repairs, 1);
  validate_reactive_plan(result, layout, state, {0, 1});
}

TEST(ReactivePlanner, HotStandbyDestinations) {
  auto w = make_world(20, 6, 150, 3);
  fail_nodes(w, {7});
  ReactiveOptions opts = rs_options(4);
  opts.scenario = Scenario::kHotStandby;
  ReactivePlanner planner(w.layout, w.state, opts);
  const auto result = planner.plan({7});
  validate_reactive_plan(result, w.layout, w.state, {7});
  for (const auto& round : result.plan.rounds) {
    for (const auto& task : round.reconstructions) {
      EXPECT_TRUE(w.state.is_hot_standby(task.dst));
    }
  }
}

TEST(ReactivePlanner, SimulatedTimeMatchesReconstructionOnly) {
  // A reactive plan for node X equals a predictive reconstruction-only
  // plan in simulated cost (same rounds structure, same traffic).
  auto w = make_world(40, 9, 400, 4);
  const NodeId victim = 11;

  sim::SimParams sp;
  sp.chunk_bytes = static_cast<double>(MB(64));
  sp.disk_bw = MBps(100);
  sp.net_bw = Gbps(1);
  sp.k_repair = 6;

  // Reactive.
  auto w1 = w;
  fail_nodes(w1, {victim});
  ReactivePlanner reactive(w1.layout, w1.state, rs_options(6));
  const auto r = reactive.plan({victim});
  const auto reactive_time = sim::simulate(r.plan, sp);

  // Predictive reconstruction-only on the same layout.
  auto w2 = w;
  w2.state.set_health(victim, cluster::NodeHealth::kSoonToFail);
  PlannerOptions popts;
  popts.k_repair = 6;
  popts.chunk_bytes = sp.chunk_bytes;
  FastPrPlanner predictive(w2.layout, w2.state, popts);
  const auto p_time =
      sim::simulate(predictive.plan_reconstruction_only(), sp);

  EXPECT_EQ(reactive_time.repair_traffic_chunks,
            p_time.repair_traffic_chunks);
  EXPECT_NEAR(reactive_time.total_time, p_time.total_time,
              p_time.total_time * 0.25);
}

}  // namespace
}  // namespace fastpr::core
