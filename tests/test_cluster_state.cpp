// Cluster health/role bookkeeping, incl. multi-STF batch flagging.
#include "cluster/cluster_state.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fastpr::cluster {
namespace {

ClusterState make_cluster(int storage = 10, int standby = 3) {
  return ClusterState(storage, standby, BandwidthProfile{100.0, 125.0});
}

TEST(ClusterState, InitialHealthAllHealthy) {
  const auto c = make_cluster();
  EXPECT_EQ(c.num_nodes(), 13);
  EXPECT_EQ(c.stf_node(), kNoNode);
  EXPECT_EQ(c.healthy_storage_nodes().size(), 10u);
  EXPECT_EQ(c.hot_standby_nodes().size(), 3u);
}

TEST(ClusterState, HotStandbyIdsFollowStorage) {
  const auto c = make_cluster(4, 2);
  EXPECT_FALSE(c.is_hot_standby(3));
  EXPECT_TRUE(c.is_hot_standby(4));
  EXPECT_TRUE(c.is_hot_standby(5));
  const auto spares = c.hot_standby_nodes();
  EXPECT_EQ(spares, (std::vector<NodeId>{4, 5}));
}

TEST(ClusterState, StfExcludedFromHealthy) {
  auto c = make_cluster();
  c.set_health(3, NodeHealth::kSoonToFail);
  EXPECT_EQ(c.stf_node(), 3);
  const auto healthy = c.healthy_storage_nodes();
  EXPECT_EQ(healthy.size(), 9u);
  for (NodeId n : healthy) EXPECT_NE(n, 3);
}

TEST(ClusterState, StfBatchFlaggingAndEnumeration) {
  auto c = make_cluster();
  c.set_health(4, NodeHealth::kSoonToFail);
  c.set_health(3, NodeHealth::kSoonToFail);
  // stf_node() stays the lowest-id flagged node; stf_nodes() lists the
  // batch in ascending order regardless of flagging order.
  EXPECT_EQ(c.stf_node(), 3);
  EXPECT_EQ(c.stf_nodes(), (std::vector<NodeId>{3, 4}));
  // Re-flagging the same node is idempotent.
  c.set_health(3, NodeHealth::kSoonToFail);
  EXPECT_EQ(c.stf_nodes(), (std::vector<NodeId>{3, 4}));
  // Both members leave the healthy pool.
  const auto healthy = c.healthy_storage_nodes();
  EXPECT_EQ(healthy.size(), 8u);
  // Unflagging one member shrinks the batch back to a single node.
  c.set_health(4, NodeHealth::kHealthy);
  EXPECT_EQ(c.stf_nodes(), (std::vector<NodeId>{3}));
}

TEST(ClusterState, StfCanTransitionToFailedThenNewStfAllowed) {
  auto c = make_cluster();
  c.set_health(3, NodeHealth::kSoonToFail);
  c.set_health(3, NodeHealth::kFailed);
  EXPECT_EQ(c.stf_node(), kNoNode);
  c.set_health(5, NodeHealth::kSoonToFail);
  EXPECT_EQ(c.stf_node(), 5);
}

TEST(ClusterState, FailedNodeNotHealthy) {
  auto c = make_cluster();
  c.set_health(0, NodeHealth::kFailed);
  const auto healthy = c.healthy_storage_nodes();
  EXPECT_EQ(healthy.size(), 9u);
  EXPECT_EQ(c.health(0), NodeHealth::kFailed);
}

TEST(ClusterState, FailedSpareExcluded) {
  auto c = make_cluster(4, 2);
  c.set_health(5, NodeHealth::kFailed);
  EXPECT_EQ(c.hot_standby_nodes(), (std::vector<NodeId>{4}));
}

TEST(ClusterState, BoundsChecked) {
  auto c = make_cluster();
  EXPECT_THROW(c.health(13), CheckFailure);
  EXPECT_THROW(c.set_health(-1, NodeHealth::kFailed), CheckFailure);
}

}  // namespace
}  // namespace fastpr::cluster
