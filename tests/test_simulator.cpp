// Simulator: paper-model round times match §III arithmetic; strategy
// ordering invariants (optimum <= FastPR <= baselines) hold end to end.
#include "sim/simulator.h"
#include "sim/strategies.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/units.h"

namespace fastpr::sim {
namespace {

using cluster::ChunkRef;

SimParams paper_params(core::Scenario scenario) {
  SimParams p;
  p.chunk_bytes = static_cast<double>(MB(64));
  p.disk_bw = MBps(100);
  p.net_bw = Gbps(1);
  p.k_repair = 6;
  p.hot_standby = 3;
  p.scenario = scenario;
  return p;
}

core::RepairRound round_with(int reconstructions, int migrations) {
  core::RepairRound round;
  for (int i = 0; i < reconstructions; ++i) {
    core::ReconstructionTask t;
    t.chunk = ChunkRef{i, 0};
    for (int s = 0; s < 6; ++s) {
      t.sources.push_back(core::SourceRead{10 + i * 6 + s, {i, s + 1}});
    }
    t.dst = 100 + i;
    round.reconstructions.push_back(std::move(t));
  }
  for (int i = 0; i < migrations; ++i) {
    round.migrations.push_back(
        core::MigrationTask{ChunkRef{50 + i, 0}, 0, 200 + i});
  }
  return round;
}

TEST(Simulator, MigrationOnlyRoundTimeIsCountTimesTm) {
  const auto p = paper_params(core::Scenario::kScattered);
  core::RepairPlan plan;
  plan.stf_node = 0;
  plan.rounds.push_back(round_with(0, 7));
  const auto result = simulate(plan, p);
  const double tm = 0.64 + 64.0 * (1 << 20) / (1e9 / 8) + 0.64;
  EXPECT_NEAR(result.total_time, 7 * tm, 1e-9);
  EXPECT_EQ(result.migrated, 7);
  EXPECT_EQ(result.repair_traffic_chunks, 7);
}

TEST(Simulator, ScatteredReconstructionRoundTimeIsTr) {
  const auto p = paper_params(core::Scenario::kScattered);
  core::RepairPlan plan;
  plan.stf_node = 0;
  plan.rounds.push_back(round_with(5, 0));
  const auto result = simulate(plan, p);
  const double c_bn = 64.0 * (1 << 20) / (1e9 / 8);
  EXPECT_NEAR(result.total_time, 0.64 + 6 * c_bn + 0.64, 1e-9);
  EXPECT_EQ(result.repair_traffic_chunks, 30);  // 5 chunks × k=6
}

TEST(Simulator, CoupledRoundTakesMaxOfStreams) {
  const auto p = paper_params(core::Scenario::kScattered);
  core::RepairPlan plan;
  plan.stf_node = 0;
  plan.rounds.push_back(round_with(3, 10));  // migration dominates
  const auto result = simulate(plan, p);
  const double tm = 0.64 + 64.0 * (1 << 20) / (1e9 / 8) + 0.64;
  EXPECT_NEAR(result.total_time, 10 * tm, 1e-9);
}

TEST(Simulator, HotStandbyRoundScalesWithGroupSize) {
  const auto p = paper_params(core::Scenario::kHotStandby);
  core::RepairPlan plan;
  plan.stf_node = 0;
  plan.rounds.push_back(round_with(9, 0));
  const auto result = simulate(plan, p);
  const double c_bn = 64.0 * (1 << 20) / (1e9 / 8);
  const double expected = 0.64 + 9.0 * 6 * c_bn / 3 + 9.0 * 0.64 / 3;
  EXPECT_NEAR(result.total_time, expected, 1e-9);
}

TEST(Simulator, RoundTimesAccumulate) {
  const auto p = paper_params(core::Scenario::kScattered);
  core::RepairPlan plan;
  plan.stf_node = 0;
  plan.rounds.push_back(round_with(2, 0));
  plan.rounds.push_back(round_with(0, 3));
  const auto result = simulate(plan, p);
  ASSERT_EQ(result.round_times.size(), 2u);
  EXPECT_NEAR(result.total_time,
              result.round_times[0] + result.round_times[1], 1e-12);
}

TEST(Simulator, ChainRoundTimesMatchCostModelExactly) {
  // Simulated chain rounds and CostModel::round_time(.., kChain) use the
  // same closed form — the agreement must be bit-exact, not approximate,
  // so predicted-vs-simulated diffs stay clean.
  for (auto scenario :
       {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
    auto p = paper_params(scenario);
    p.packet_bytes = static_cast<double>(256 * kKiB);
    p.chain_hop_overhead_seconds = 500e-6;

    core::ModelParams mp;
    mp.num_nodes = 100;
    mp.stf_chunks = 100;
    mp.chunk_bytes = p.chunk_bytes;
    mp.disk_bw = p.disk_bw;
    mp.net_bw = p.net_bw;
    mp.k_repair = p.k_repair;
    mp.hot_standby = p.hot_standby;
    mp.scenario = scenario;
    mp.packet_bytes = p.packet_bytes;
    mp.chain_hop_overhead_seconds = p.chain_hop_overhead_seconds;
    const core::CostModel model(mp);

    core::RepairPlan plan;
    plan.stf_node = 0;
    const std::vector<std::pair<int, int>> rounds = {
        {5, 0}, {3, 4}, {1, 9}};
    for (const auto& [cr, cm] : rounds) {
      auto round = round_with(cr, cm);
      round.strategy = core::RepairStrategy::kChain;
      plan.rounds.push_back(std::move(round));
    }
    const auto result = simulate(plan, p);
    ASSERT_EQ(result.round_times.size(), rounds.size());
    for (size_t i = 0; i < rounds.size(); ++i) {
      EXPECT_DOUBLE_EQ(
          result.round_times[i],
          model.round_time(rounds[i].first, rounds[i].second,
                           core::RepairStrategy::kChain))
          << "scenario=" << core::to_string(scenario) << " round=" << i;
    }
  }
}

TEST(Simulator, ChainRoundRequiresPacketBytes) {
  auto p = paper_params(core::Scenario::kScattered);  // packet_bytes = 0
  core::RepairPlan plan;
  plan.stf_node = 0;
  auto round = round_with(2, 0);
  round.strategy = core::RepairStrategy::kChain;
  plan.rounds.push_back(std::move(round));
  EXPECT_THROW(simulate(plan, p), CheckFailure);
}

TEST(Simulator, ResourceModelNotSlowerThanPaperForMigrations) {
  // The resource model overlaps migration stages across chunks, so it
  // can only be faster than the serial per-chunk paper model.
  auto p = paper_params(core::Scenario::kScattered);
  core::RepairPlan plan;
  plan.stf_node = 0;
  plan.rounds.push_back(round_with(0, 8));
  const auto paper = simulate(plan, p);
  p.model = TimingModel::kResourceModel;
  const auto resource = simulate(plan, p);
  EXPECT_LE(resource.total_time, paper.total_time * (1 + 1e-9));
  EXPECT_GT(resource.total_time, 0);
}

class StrategyOrderingTest
    : public ::testing::TestWithParam<core::Scenario> {};

TEST_P(StrategyOrderingTest, OptimumBelowFastPrBelowBaselines) {
  ExperimentConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_stripes = 400;
  cfg.n = 9;
  cfg.k = 6;
  cfg.chunk_bytes = static_cast<double>(MB(64));
  cfg.disk_bw = MBps(100);
  cfg.net_bw = Gbps(1);
  cfg.hot_standby = 3;
  cfg.scenario = GetParam();
  cfg.seed = 5;
  const auto t = run_experiment(cfg);
  EXPECT_GT(t.stf_chunks, 0);
  EXPECT_LE(t.optimum, t.fastpr * 1.001);
  EXPECT_LE(t.fastpr, t.reconstruction_only * 1.001);
  EXPECT_LE(t.fastpr, t.migration_only * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, StrategyOrderingTest,
                         ::testing::Values(core::Scenario::kScattered,
                                           core::Scenario::kHotStandby),
                         [](const auto& info) {
                           return info.param == core::Scenario::kScattered
                                      ? "scattered"
                                      : "hotstandby";
                         });

TEST(Strategies, AveragingIsDeterministicPerSeed) {
  ExperimentConfig cfg;
  cfg.num_nodes = 30;
  cfg.num_stripes = 150;
  cfg.n = 6;
  cfg.k = 4;
  cfg.chunk_bytes = static_cast<double>(MB(16));
  cfg.disk_bw = MBps(100);
  cfg.net_bw = Gbps(1);
  cfg.seed = 77;
  const auto a = run_averaged(cfg, 3);
  const auto b = run_averaged(cfg, 3);
  EXPECT_DOUBLE_EQ(a.fastpr, b.fastpr);
  EXPECT_DOUBLE_EQ(a.optimum, b.optimum);
}

TEST(Simulator, RepairBwFractionEqualsScaledNetBw) {
  // simulate() folds the throttle fraction into net_bw once at entry,
  // so a throttled run must be bit-identical to an unthrottled run at
  // the scaled bandwidth — under BOTH timing models.
  core::RepairPlan plan;
  plan.stf_node = 0;
  plan.rounds.push_back(round_with(5, 3));
  plan.rounds.push_back(round_with(2, 6));
  for (const auto model :
       {TimingModel::kPaperModel, TimingModel::kResourceModel}) {
    auto throttled = paper_params(core::Scenario::kScattered);
    throttled.model = model;
    throttled.repair_bw_fraction = 0.2;
    auto scaled = throttled;
    scaled.repair_bw_fraction = 1.0;
    scaled.net_bw = throttled.net_bw * 0.2;
    const auto a = simulate(plan, throttled);
    const auto b = simulate(plan, scaled);
    EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
    ASSERT_EQ(a.round_times.size(), b.round_times.size());
    for (size_t r = 0; r < a.round_times.size(); ++r) {
      EXPECT_DOUBLE_EQ(a.round_times[r], b.round_times[r]);
    }
    EXPECT_EQ(a.migrated, b.migrated);
    // And throttling really costs time versus the unthrottled run.
    auto full = paper_params(core::Scenario::kScattered);
    full.model = model;
    EXPECT_GT(a.total_time, simulate(plan, full).total_time);
  }
}

TEST(Simulator, RejectsBadRepairBwFraction) {
  core::RepairPlan plan;
  plan.stf_node = 0;
  plan.rounds.push_back(round_with(1, 1));
  auto p = paper_params(core::Scenario::kScattered);
  p.repair_bw_fraction = 0;
  EXPECT_THROW(simulate(plan, p), CheckFailure);
  p.repair_bw_fraction = 2.0;
  EXPECT_THROW(simulate(plan, p), CheckFailure);
}

}  // namespace
}  // namespace fastpr::sim
