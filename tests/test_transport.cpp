// Transports: delivery, ordering, shutdown semantics, bandwidth shaping
// timing, and TCP-over-loopback equivalence.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/inproc_transport.h"
#include "net/tcp_transport.h"
#include "util/units.h"

namespace fastpr::net {
namespace {

Message data_packet(int from, int to, size_t payload_bytes) {
  Message m;
  m.type = MessageType::kDataPacket;
  m.from = from;
  m.to = to;
  m.payload.assign(payload_bytes, 0x5A);
  return m;
}

Message control(int from, int to, MessageType type = MessageType::kTaskDone) {
  Message m;
  m.type = type;
  m.from = from;
  m.to = to;
  m.task_id = 7;
  return m;
}

template <typename T>
std::unique_ptr<Transport> make_transport(int nodes, double rate) {
  typename T::Options opts;
  opts.net_bytes_per_sec = rate;
  return std::make_unique<T>(nodes, opts);
}

class TransportTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Transport> create(int nodes, double rate = 0) {
    if (std::string(GetParam()) == "tcp") {
      return make_transport<TcpTransport>(nodes, rate);
    }
    return make_transport<InprocTransport>(nodes, rate);
  }
};

TEST_P(TransportTest, DeliversToAddressee) {
  auto t = create(3);
  t->send(control(0, 2));
  const auto msg = t->recv(2, std::chrono::milliseconds(2000));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->from, 0);
  EXPECT_EQ(msg->task_id, 7u);
  // Nothing for node 1.
  EXPECT_FALSE(t->recv(1, std::chrono::milliseconds(50)).has_value());
  t->shutdown();
}

TEST_P(TransportTest, PreservesPairwiseOrder) {
  auto t = create(2);
  for (uint64_t i = 0; i < 50; ++i) {
    auto m = control(0, 1);
    m.task_id = i;
    t->send(std::move(m));
  }
  for (uint64_t i = 0; i < 50; ++i) {
    const auto msg = t->recv(1, std::chrono::milliseconds(2000));
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->task_id, i);
  }
  t->shutdown();
}

TEST_P(TransportTest, PayloadIntegrity) {
  auto t = create(2);
  auto m = data_packet(0, 1, 100000);
  for (size_t i = 0; i < m.payload.size(); ++i) {
    m.payload[i] = static_cast<uint8_t>(i * 31);
  }
  const auto expected = m.payload.clone();
  t->send(std::move(m));
  const auto got = t->recv(1, std::chrono::milliseconds(2000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, expected);
  t->shutdown();
}

TEST_P(TransportTest, ShutdownUnblocksReceivers) {
  auto t = create(2);
  std::thread receiver([&] {
    const auto msg = t->recv(1, std::nullopt);
    EXPECT_FALSE(msg.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  t->shutdown();
  receiver.join();
}

TEST_P(TransportTest, ShapingSlowsDataPackets) {
  // 2 MB/s rate, ~2 MB transfer beyond burst: expect >= ~0.5 s.
  auto t = create(2, 2e6);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) {
    t->send(data_packet(0, 1, 1'000'000));
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(t->recv(1, std::chrono::milliseconds(10000)).has_value());
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GT(secs, 0.3);
  t->shutdown();
}

TEST_P(TransportTest, ControlMessagesRideFree) {
  auto t = create(2, 1000.0);  // 1 KB/s: data would crawl
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) t->send(control(0, 1));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(t->recv(1, std::chrono::milliseconds(2000)).has_value());
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(secs, 1.0);
  t->shutdown();
}

INSTANTIATE_TEST_SUITE_P(Kinds, TransportTest,
                         ::testing::Values("inproc", "tcp"));

TEST(InprocTransport, TracksBytesSent) {
  InprocTransport::Options opts;
  InprocTransport t(2, opts);
  auto msg = control(0, 1);
  const auto size = msg.encoded_size();
  t.send(std::move(msg));
  EXPECT_EQ(t.total_bytes_sent(), static_cast<int64_t>(size));
  t.shutdown();
}

TEST(InprocTransport, PerNodeBandwidthOverride) {
  InprocTransport::Options opts;
  opts.net_bytes_per_sec = 0;  // unlimited default
  InprocTransport t(3, opts);
  t.set_node_bandwidth(1, MBps(1));  // throttle node 1 only
  // Node 0 → 2 stays fast.
  const auto start = std::chrono::steady_clock::now();
  t.send(data_packet(0, 2, 4'000'000));
  ASSERT_TRUE(t.recv(2, std::chrono::milliseconds(3000)).has_value());
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            0.5);
  t.shutdown();
}

TEST(TcpTransport, ManyNodesBootAndStop) {
  TcpTransport::Options opts;
  TcpTransport t(25, opts);
  t.send(control(24, 0));
  ASSERT_TRUE(t.recv(0, std::chrono::milliseconds(2000)).has_value());
  t.shutdown();
}

}  // namespace
}  // namespace fastpr::net
