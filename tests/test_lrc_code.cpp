// Azure-style LRC: local repair locality (k' = k/l), parity structure,
// multi-failure decode through the local/global cascade.
#include "ec/lrc_code.h"

#include <gtest/gtest.h>

#include <random>

#include "ec/erasure_code.h"
#include "util/check.h"

namespace fastpr::ec {
namespace {

std::vector<std::vector<uint8_t>> random_data(int k, size_t chunk_size,
                                              uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::vector<uint8_t>> data(static_cast<size_t>(k),
                                         std::vector<uint8_t>(chunk_size));
  for (auto& chunk : data) {
    for (auto& b : chunk) b = static_cast<uint8_t>(rng());
  }
  return data;
}

struct LrcParam {
  int k, l, g;
};

class LrcCodeTest : public ::testing::TestWithParam<LrcParam> {};

TEST_P(LrcCodeTest, Layout) {
  const auto p = GetParam();
  const LrcCode code(p.k, p.l, p.g);
  EXPECT_EQ(code.n(), p.k + p.l + p.g);
  EXPECT_EQ(code.k(), p.k);
  EXPECT_EQ(code.group_size(), p.k / p.l);
}

TEST_P(LrcCodeTest, LocalRepairFetchesGroupOnly) {
  const auto p = GetParam();
  const LrcCode code(p.k, p.l, p.g);
  const int gs = p.k / p.l;
  for (int i = 0; i < p.k + p.l; ++i) {
    EXPECT_EQ(code.repair_fetch_count(i), gs) << "index " << i;
  }
  for (int i = p.k + p.l; i < code.n(); ++i) {
    EXPECT_EQ(code.repair_fetch_count(i), p.k);  // global parity
  }
}

TEST_P(LrcCodeTest, SingleChunkLocalRepairExact) {
  const auto p = GetParam();
  const LrcCode code(p.k, p.l, p.g);
  const auto data = random_data(p.k, 130, 41);
  const auto stripe = encode_stripe(code, data);

  for (int lost = 0; lost < code.n(); ++lost) {
    std::vector<bool> available(static_cast<size_t>(code.n()), true);
    available[static_cast<size_t>(lost)] = false;
    const auto helpers = code.repair_helpers(lost, available);
    // Local repair touches exactly k' chunks, all within the group.
    if (code.group_of(lost) >= 0) {
      EXPECT_EQ(static_cast<int>(helpers.size()), code.group_size());
      for (int h : helpers) {
        EXPECT_EQ(code.group_of(h), code.group_of(lost));
      }
    }
    std::vector<ConstChunk> helper_data;
    for (int h : helpers) {
      helper_data.emplace_back(stripe[static_cast<size_t>(h)]);
    }
    std::vector<uint8_t> out(130);
    code.repair_chunk(lost, helpers, helper_data, out);
    EXPECT_EQ(out, stripe[static_cast<size_t>(lost)]) << "lost=" << lost;
  }
}

TEST_P(LrcCodeTest, DegradedLocalGroupFallsBackToGlobal) {
  const auto p = GetParam();
  if (p.g == 0) return;  // needs a global parity for the fallback
  const LrcCode code(p.k, p.l, p.g);
  const auto data = random_data(p.k, 64, 42);
  const auto stripe = encode_stripe(code, data);

  // Lose chunk 0 AND its local parity: local repair impossible, but the
  // global parity still covers it.
  std::vector<bool> available(static_cast<size_t>(code.n()), true);
  available[0] = false;
  available[static_cast<size_t>(p.k)] = false;  // local parity of group 0
  const auto helpers = code.repair_helpers(0, available);
  std::vector<ConstChunk> helper_data;
  for (int h : helpers) {
    EXPECT_TRUE(available[static_cast<size_t>(h)]);
    helper_data.emplace_back(stripe[static_cast<size_t>(h)]);
  }
  std::vector<uint8_t> out(64);
  code.repair_chunk(0, helpers, helper_data, out);
  EXPECT_EQ(out, stripe[0]);
}

TEST_P(LrcCodeTest, DecodeMultiFailureCascade) {
  const auto p = GetParam();
  const LrcCode code(p.k, p.l, p.g);
  const auto data = random_data(p.k, 80, 43);
  const auto original = encode_stripe(code, data);

  // One loss per local group is always decodable locally, in any order.
  auto damaged = original;
  std::vector<int> erased;
  const int gs = p.k / p.l;
  for (int group = 0; group < p.l; ++group) erased.push_back(group * gs);
  for (int e : erased) {
    std::fill(damaged[static_cast<size_t>(e)].begin(),
              damaged[static_cast<size_t>(e)].end(), 0);
  }
  std::vector<MutChunk> spans(damaged.begin(), damaged.end());
  ASSERT_TRUE(code.decode(erased, spans));
  EXPECT_EQ(damaged, original);
}

INSTANTIATE_TEST_SUITE_P(
    Codes, LrcCodeTest,
    ::testing::Values(LrcParam{4, 2, 2}, LrcParam{6, 2, 2}, LrcParam{6, 3, 1},
                      LrcParam{12, 2, 2}, LrcParam{10, 5, 0}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.k) + "l" +
             std::to_string(info.param.l) + "g" +
             std::to_string(info.param.g);
    });

TEST(LrcCode, AzureStyle12_2_2RepairTrafficHalved) {
  // LRC(12,2,2) repairs a data chunk from 6 chunks instead of 12 — the
  // §III k' substitution FastPR's LRC analysis uses.
  const LrcCode code(12, 2, 2);
  EXPECT_EQ(code.repair_fetch_count(0), 6);
  EXPECT_EQ(code.n(), 16);
}

TEST(LrcCode, LocalParityIsGroupXor) {
  const LrcCode code(4, 2, 1);
  const auto data = random_data(4, 16, 44);
  const auto stripe = encode_stripe(code, data);
  for (size_t b = 0; b < 16; ++b) {
    EXPECT_EQ(stripe[4][b], static_cast<uint8_t>(data[0][b] ^ data[1][b]));
    EXPECT_EQ(stripe[5][b], static_cast<uint8_t>(data[2][b] ^ data[3][b]));
  }
}

TEST(LrcCode, UndecodablePatternReturnsFalse) {
  // Lose an entire local group plus its parity with too few globals.
  const LrcCode code(4, 2, 1);
  const auto data = random_data(4, 32, 45);
  auto stripe = encode_stripe(code, data);
  std::vector<int> erased = {0, 1, 4};  // group 0 + its parity; g=1 < 2
  std::vector<MutChunk> spans(stripe.begin(), stripe.end());
  EXPECT_FALSE(code.decode(erased, spans));
}

TEST(LrcCode, InvalidParametersRejected) {
  EXPECT_THROW(LrcCode(5, 2, 1), CheckFailure);  // k % l != 0
  EXPECT_THROW(LrcCode(0, 1, 1), CheckFailure);
}

}  // namespace
}  // namespace fastpr::ec
