// Concurrency stress tests. These exist primarily as sanitizer fodder:
// under -DFASTPR_SANITIZE=thread they hammer the lock-protected paths of
// TokenBucket, ThreadPool and ChunkStore from many threads at once so
// TSan can observe every pairing; the functional assertions double as
// plain correctness checks in the default build.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "agent/chunk_store.h"
#include "util/check.h"
#include "util/lock_order.h"
#include "util/mutex.h"
#include "util/thread_pool.h"
#include "util/token_bucket.h"
#include "util/units.h"

namespace fastpr {
namespace {

using agent::ChunkStore;
using cluster::ChunkRef;

TEST(TokenBucketStress, ConcurrentAcquireAndSetRate) {
  // Many acquirers race against a thread flapping the rate, including
  // dropping to a crawl and back. Tokens are conserved (no deadlock, no
  // lost wakeup) if every acquirer finishes.
  TokenBucket bucket(MBps(64), /*burst_bytes=*/64 * kKiB);
  std::atomic<int64_t> acquired{0};
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  constexpr int64_t kBytes = 8 * kKiB;

  std::vector<std::thread> acquirers;
  acquirers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    acquirers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        bucket.acquire(kBytes);
        acquired.fetch_add(kBytes, std::memory_order_relaxed);
      }
    });
  }
  std::thread flapper([&] {
    for (int i = 0; i < 50; ++i) {
      bucket.set_rate(MBps(1));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      bucket.set_rate(MBps(256));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    // Leave it generous so the tail of acquirers drains quickly.
    bucket.set_rate(MBps(1024));
  });
  for (auto& t : acquirers) t.join();
  flapper.join();
  EXPECT_EQ(acquired.load(), int64_t{kThreads} * kIters * kBytes);
}

TEST(TokenBucketStress, FlipToUnlimitedReleasesWaiters) {
  // A near-zero rate parks acquirers deep in the cv wait; flipping to
  // unlimited must release every one of them promptly.
  TokenBucket bucket(/*rate_bytes_per_sec=*/1.0, /*burst_bytes=*/1);
  std::atomic<int> released{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> waiters;
  waiters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    waiters.emplace_back([&] {
      bucket.acquire(MB(1));  // centuries at 1 B/s
      released.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Let them reach the wait, then open the floodgate.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(released.load(), 0);
  bucket.set_rate(0);  // unlimited
  for (auto& t : waiters) t.join();
  EXPECT_EQ(released.load(), kThreads);
}

TEST(TokenBucketStress, ConcurrentRateReads) {
  TokenBucket bucket(MBps(10));
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const double r = bucket.rate();
      EXPECT_TRUE(r == MBps(10) || r == MBps(20));
    }
  });
  for (int i = 0; i < 500; ++i) {
    bucket.set_rate(i % 2 == 0 ? MBps(20) : MBps(10));
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
}

TEST(ThreadPoolStress, SubmitWhileDestructingChurn) {
  // Tasks keep submitting follow-up work while the main thread tears the
  // pool down. The destructor contract is "queued tasks drain"; nested
  // submissions race that drain on purpose. All outer tasks must run;
  // nested futures may or may not be satisfied, but nothing may crash,
  // leak, or deadlock (ASan/TSan verify the first two).
  std::atomic<int> outer_ran{0};
  std::atomic<int> nested_ran{0};
  constexpr int kOuter = 64;
  {
    ThreadPool pool(4);
    for (int i = 0; i < kOuter; ++i) {
      pool.submit([&pool, &outer_ran, &nested_ran] {
        outer_ran.fetch_add(1, std::memory_order_relaxed);
        pool.submit(
            [&nested_ran] { nested_ran.fetch_add(1, std::memory_order_relaxed); });
      });
    }
    // Destructor runs here, concurrently with workers still submitting.
  }
  EXPECT_EQ(outer_ran.load(), kOuter);
  // Every nested task was submitted from inside a live worker, and a
  // worker only exits when the queue is empty — so the submitter (or a
  // sibling) always drains it. The pool never drops an accepted task.
  EXPECT_EQ(nested_ran.load(), kOuter);
}

TEST(ThreadPoolStress, ManyProducersOneShutdown) {
  std::atomic<int> ran{0};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  {
    ThreadPool pool(2);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < kPerProducer; ++i) {
          pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    for (auto& t : producers) t.join();
    // All submissions happened-before the destructor: all must run.
  }
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
}

TEST(ChunkStoreStress, ConcurrentReadWriteScrub) {
  ChunkStore::Options opts;  // unthrottled: stress the maps, not the clock
  ChunkStore store(opts);
  constexpr int kChunks = 32;
  const std::vector<uint8_t> blob(4 * kKiB, 0x5a);
  for (int i = 0; i < kChunks; ++i) {
    store.write(ChunkRef{i, 0}, blob);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> read_failures{0};
  std::vector<std::thread> workers;
  // Readers sweep all chunks.
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < kChunks; ++i) {
          const auto data = store.read(ChunkRef{i, 0});
          if (!data.has_value() || data->size() != blob.size()) {
            read_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  // A writer keeps rewriting (fresh checksums race the scrubber).
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < kChunks; ++i) {
        store.write(ChunkRef{i, 0}, blob);
      }
    }
  });
  // A scrubber runs continuously; contents are never corrupted here, so
  // it must never report damage.
  std::atomic<int> damage_reports{0};
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      damage_reports.fetch_add(static_cast<int>(store.scrub().size()),
                               std::memory_order_relaxed);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.join();

  EXPECT_EQ(read_failures.load(), 0);
  EXPECT_EQ(damage_reports.load(), 0);
  EXPECT_EQ(store.materialized_count(), static_cast<size_t>(kChunks));
}

TEST(ChunkStoreStress, ConcurrentErrorInjectionAndReads) {
  ChunkStore::Options opts;
  ChunkStore store(opts);
  const std::vector<uint8_t> blob(1 * kKiB, 0x11);
  constexpr int kChunks = 16;
  for (int i = 0; i < kChunks; ++i) store.write(ChunkRef{i, 0}, blob);

  std::atomic<bool> stop{false};
  std::thread injector([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < kChunks; ++i) store.inject_read_error(ChunkRef{i, 0});
      store.clear_read_errors();
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < kChunks; ++i) {
        const auto data = store.read(ChunkRef{i, 0});
        // Either outcome is legal mid-injection, but a present read must
        // be intact.
        if (data.has_value()) EXPECT_EQ(data->size(), blob.size());
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  injector.join();
  reader.join();
  store.clear_read_errors();
  EXPECT_TRUE(store.read(ChunkRef{0, 0}).has_value());
}

// --- Runtime lock-order tracker (util/mutex.cpp) ---------------------------
//
// Active only in tracking builds (sanitizer presets / -DFASTPR_LOCK_TRACKING).
// Release builds compile the tracker out entirely, so these skip there.

TEST(LockTracker, DetectsAbbaCycleSingleThreaded) {
#if !FASTPR_LOCK_TRACKING_ENABLED
  GTEST_SKIP() << "lock tracking compiled out in this build";
#else
  // Unranked mutexes: ordering is learned from observed acquisitions.
  Mutex a;  // fastpr-lint: allow(lock-rank)
  Mutex b;  // fastpr-lint: allow(lock-rank)
  {
    MutexLock la(a);
    MutexLock lb(b);  // seeds the a -> b edge in the global order graph
  }
  MutexLock lb(b);
  // b -> a would close the cycle; the tracker must refuse before blocking.
  EXPECT_THROW({ MutexLock la(a); }, CheckFailure);
#endif
}

TEST(LockTracker, DetectsRankOrderViolation) {
#if !FASTPR_LOCK_TRACKING_ENABLED
  GTEST_SKIP() << "lock tracking compiled out in this build";
#else
  // Acquire against the declared hierarchy: send-queue (30) is ranked
  // above send-window (20), so window-then-queue is fine but
  // queue-then-window must throw.
  Mutex window{lock_order::kAgentSendWindow};
  Mutex queue{lock_order::kAgentSendQueue};
  {
    MutexLock lw(window);
    MutexLock lq(queue);  // ascending: fine
  }
  MutexLock lq(queue);
  EXPECT_THROW({ MutexLock lw(window); }, CheckFailure);
#endif
}

TEST(LockTracker, ReleaseInLifoOrderIsClean) {
#if !FASTPR_LOCK_TRACKING_ENABLED
  GTEST_SKIP() << "lock tracking compiled out in this build";
#else
  Mutex window{lock_order::kAgentSendWindow};
  Mutex queue{lock_order::kAgentSendQueue};
  for (int i = 0; i < 100; ++i) {
    MutexLock lw(window);
    MutexLock lq(queue);
  }
  SUCCEED();
#endif
}

}  // namespace
}  // namespace fastpr
