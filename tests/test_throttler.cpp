// Lease protocol edge cases (DESIGN.md §10): AIMD against the SLO,
// expiry returning budget to the pool, sequence-stamped grants that
// cannot double-apply, panic mode, and throttler state surviving a
// mid-repair STF death. All with synthetic time — the throttler and the
// budget take `now_us` from the caller.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "agent/repair_budget.h"
#include "core/repair_throttler.h"
#include "util/check.h"
#include "util/units.h"

namespace fastpr {
namespace {

using core::LeaseGrant;
using core::RepairThrottler;
using core::ThrottlerOptions;

ThrottlerOptions base_options() {
  ThrottlerOptions o;
  o.total_bytes_per_sec = 100e6;
  o.floor_bytes_per_sec = 5e6;
  o.slo_p99_seconds = 0.050;
  o.increase_bytes_per_sec = 5e6;
  o.decrease_factor = 0.5;
  o.lease_ttl_us = 200'000;
  o.initial_fraction = 0.5;
  return o;
}

double grant_rate(const std::vector<LeaseGrant>& grants,
                  cluster::NodeId node) {
  for (const auto& g : grants) {
    if (g.agent == node) return g.bytes_per_sec;
  }
  ADD_FAILURE() << "no grant for agent " << node;
  return -1;
}

TEST(RepairThrottler, AimdRampsUnderSloAndCutsOnBreach) {
  RepairThrottler t(base_options());
  t.add_agent(1);
  t.reset(0, /*total_repair_bytes=*/1e9);
  // Exact-value assertion, not a configuration boundary.
  // fastpr-lint: allow(units)
  EXPECT_DOUBLE_EQ(t.budget_bytes_per_sec(), 50e6);

  // Under the SLO: additive increase per tick.
  t.report_pressure(1, 0, /*p99=*/0.010, /*fg=*/0, 1000);
  t.tick(1000);
  EXPECT_DOUBLE_EQ(t.budget_bytes_per_sec(), 55e6);

  // Breach: multiplicative cut.
  t.report_pressure(1, 1, /*p99=*/0.200, /*fg=*/0, 2000);
  t.tick(2000);
  EXPECT_DOUBLE_EQ(t.budget_bytes_per_sec(), 27.5e6);
  EXPECT_EQ(t.stats().slo_breaches, 1);
}

TEST(RepairThrottler, HoldsBudgetWithoutFreshReports) {
  RepairThrottler t(base_options());
  t.add_agent(1);
  t.reset(0, 1e9);
  t.report_pressure(1, 0, 0.010, 0, 1000);
  t.tick(1000);
  const double after_ramp = t.budget_bytes_per_sec();
  // No report between ticks: the AIMD holds rather than ramping blind.
  t.tick(2000);
  EXPECT_DOUBLE_EQ(t.budget_bytes_per_sec(), after_ramp);
}

TEST(RepairThrottler, CutNeverGoesBelowFloor) {
  RepairThrottler t(base_options());
  t.add_agent(1);
  t.reset(0, 1e9);
  for (int i = 0; i < 20; ++i) {
    const int64_t now = 1000 * (i + 1);
    t.report_pressure(1, 0, /*p99=*/1.0, 0, now);
    t.tick(now);
  }
  EXPECT_DOUBLE_EQ(t.budget_bytes_per_sec(), 5e6);
}

TEST(RepairThrottler, FixedModeNeverAdapts) {
  ThrottlerOptions o = base_options();
  o.adaptive = false;
  o.initial_fraction = 0.1;  // the "polite cap" baseline
  RepairThrottler t(o);
  t.add_agent(1);
  t.reset(0, 1e9);
  t.report_pressure(1, 0, /*p99=*/1.0, 0, 1000);
  t.tick(1000);
  t.report_pressure(1, 0, /*p99=*/0.001, 0, 2000);
  t.tick(2000);
  EXPECT_DOUBLE_EQ(t.budget_bytes_per_sec(), 10e6);
  EXPECT_EQ(t.stats().slo_breaches, 0);
}

TEST(RepairThrottler, SharesWeightedByForegroundHeadroom) {
  RepairThrottler t(base_options());
  t.add_agent(1);
  t.add_agent(2);
  t.reset(0, 1e9);
  // Agent 2's node serves 3x the foreground bytes of agent 1's.
  t.report_pressure(1, 0, 0.010, /*fg=*/10e6, 1000);
  t.report_pressure(2, 0, 0.010, /*fg=*/30e6, 1000);
  const auto grants = t.tick(1000);
  ASSERT_EQ(grants.size(), 2u);
  const double r1 = grant_rate(grants, 1);
  const double r2 = grant_rate(grants, 2);
  EXPECT_GT(r1, r2);  // quieter node gets the bigger repair share
  EXPECT_NEAR(r1 + r2, t.budget_bytes_per_sec(), 1.0);
  // w = 2/(1+fg/mean): fg {10,30} around mean 20 → weights {4/3, 0.8}.
  EXPECT_NEAR(r1 / r2, (4.0 / 3.0) / 0.8, 1e-9);
}

TEST(RepairThrottler, ExpiredLeaseReturnsShareToPool) {
  RepairThrottler t(base_options());
  t.add_agent(1);
  t.add_agent(2);
  t.reset(0, 1e9);
  t.report_pressure(1, 0, 0.010, 0, 1000);
  t.report_pressure(2, 0, 0.010, 0, 1000);
  t.tick(1000);

  // Agent 2 goes silent past the TTL; agent 1 keeps renewing.
  const int64_t later = 1000 + 3 * base_options().lease_ttl_us;
  t.report_pressure(1, 0, 0.010, 0, later);
  const auto grants = t.tick(later);
  EXPECT_EQ(t.stats().leases_expired, 1);
  // The survivor now holds the whole budget; the silent agent only gets
  // the minimal re-admission trickle.
  EXPECT_NEAR(grant_rate(grants, 1), t.budget_bytes_per_sec(), 1.0);
  EXPECT_LE(grant_rate(grants, 2),
            base_options().floor_bytes_per_sec / 2 + 1.0);

  // A fresh pressure report re-admits the expired agent.
  const int64_t revived = later + 1000;
  t.report_pressure(2, 0, 0.010, 0, revived);
  t.report_pressure(1, 0, 0.010, 0, revived);
  const auto regrants = t.tick(revived);
  EXPECT_NEAR(grant_rate(regrants, 1) + grant_rate(regrants, 2),
              t.budget_bytes_per_sec(), 1.0);
  EXPECT_GT(grant_rate(regrants, 2), 1e6);
}

TEST(RepairThrottler, GrantSequenceStrictlyMonotonicAcrossResets) {
  RepairThrottler t(base_options());
  t.add_agent(1);
  t.add_agent(2);
  t.reset(0, 1e9);
  uint64_t last_seq = 0;
  for (int round = 0; round < 3; ++round) {
    const int64_t now = 1000 * (round + 1);
    t.report_pressure(1, last_seq, 0.01, 0, now);
    t.report_pressure(2, last_seq, 0.01, 0, now);
    for (const auto& g : t.tick(now)) {
      EXPECT_GT(g.seq, last_seq);
      last_seq = std::max(last_seq, g.seq);
    }
  }
  // A new repair run must not reuse sequence numbers: stale grants from
  // the previous run stay unappliable.
  t.reset(10'000, 5e8);
  t.report_pressure(1, last_seq, 0.01, 0, 11'000);
  for (const auto& g : t.tick(11'000)) EXPECT_GT(g.seq, last_seq);
}

TEST(RepairThrottler, PanicPinsBudgetAtCeilingAndSticks) {
  RepairThrottler t(base_options());
  t.add_agent(1);
  t.reset(0, /*total_repair_bytes=*/1e9);
  // At the initial 50 MB/s the 1 GB backlog takes 20 s; deadline in 5 s.
  t.set_deadline(5'000'000);
  t.report_pressure(1, 0, 0.010, 0, 1000);
  t.tick(1000);
  EXPECT_TRUE(t.panic());
  EXPECT_DOUBLE_EQ(t.budget_bytes_per_sec(), 100e6);

  // Sticky: an SLO breach after the flip no longer cuts the budget.
  t.report_pressure(1, 0, /*p99=*/1.0, 0, 2000);
  const auto grants = t.tick(2000);
  EXPECT_TRUE(t.panic());
  EXPECT_DOUBLE_EQ(t.budget_bytes_per_sec(), 100e6);
  EXPECT_NEAR(grant_rate(grants, 1), 100e6, 1.0);
  EXPECT_EQ(t.stats().slo_breaches, 0);  // AIMD is out of the loop
}

TEST(RepairThrottler, NoPanicWhenPaceMeetsDeadline) {
  RepairThrottler t(base_options());
  t.add_agent(1);
  t.reset(0, 1e9);           // 20 s of work at the initial budget
  t.set_deadline(60'000'000);  // 60 s away: comfortably feasible
  t.report_pressure(1, 0, 0.010, 0, 1000);
  t.tick(1000);
  EXPECT_FALSE(t.panic());
  // Progress keeps the estimate feasible as time passes.
  t.on_progress(9e8);
  t.report_pressure(1, 0, 0.010, 0, 50'000'000);
  t.tick(50'000'000);
  EXPECT_FALSE(t.panic());
}

TEST(RepairThrottler, SurvivesMidRepairStfDeath) {
  // The STF node dies mid-repair: its agent vanishes (no more pressure
  // reports), the plan shrinks (set_remaining), and the throttler must
  // keep leasing to the survivors without wedging or leaking the dead
  // agent's share.
  RepairThrottler t(base_options());
  t.add_agent(1);
  t.add_agent(2);
  t.add_agent(3);  // the STF node's agent
  t.reset(0, 1e9);
  for (int i = 0; i < 3; ++i) {
    const int64_t now = 50'000 * (i + 1);
    t.report_pressure(1, 0, 0.01, 0, now);
    t.report_pressure(2, 0, 0.01, 0, now);
    t.report_pressure(3, 0, 0.01, 0, now);
    ASSERT_EQ(t.tick(now).size(), 3u);
  }
  // Death: agent 3 silent, reactive replan re-estimates the backlog.
  t.set_remaining(4e8);
  const int64_t after = 150'000 + 3 * base_options().lease_ttl_us;
  t.report_pressure(1, 0, 0.01, 0, after);
  t.report_pressure(2, 0, 0.01, 0, after);
  const auto grants = t.tick(after);
  ASSERT_EQ(grants.size(), 3u);  // dead agent still listed (re-admission)
  EXPECT_EQ(t.stats().leases_expired, 1);
  EXPECT_NEAR(grant_rate(grants, 1) + grant_rate(grants, 2),
              t.budget_bytes_per_sec(), 1.0);
  // And the feedback loop still works for the survivors.
  t.report_pressure(1, 0, /*p99=*/1.0, 0, after + 1000);
  t.tick(after + 1000);
  EXPECT_EQ(t.stats().slo_breaches, 1);
}

TEST(RepairThrottler, RejectsUnknownAgentsAndBadOptions) {
  RepairThrottler t(base_options());
  t.add_agent(1);
  t.reset(0, 1e9);
  t.report_pressure(99, 0, 1.0, 1e9, 1000);  // never added: ignored
  t.report_pressure(1, 0, 0.01, 0, 1000);
  t.tick(1000);
  EXPECT_EQ(t.stats().slo_breaches, 0);

  ThrottlerOptions bad = base_options();
  bad.total_bytes_per_sec = 0;
  EXPECT_THROW(RepairThrottler{bad}, CheckFailure);
  bad = base_options();
  bad.decrease_factor = 1.0;
  EXPECT_THROW(RepairThrottler{bad}, CheckFailure);
}

TEST(RepairBudget, DoubleGrantImpossibleViaSeqStamping) {
  agent::RepairBudget b(agent::RepairBudget::Options{});
  EXPECT_TRUE(b.apply_grant(/*seq=*/5, 10e6, 200'000, 0));
  EXPECT_EQ(b.applied_seq(), 5u);
  // Re-delivered and reordered grants are dropped, not re-applied.
  EXPECT_FALSE(b.apply_grant(5, 99e6, 200'000, 0));
  EXPECT_FALSE(b.apply_grant(4, 99e6, 200'000, 0));
  EXPECT_DOUBLE_EQ(b.current_rate(), 10e6);
  EXPECT_TRUE(b.apply_grant(6, 20e6, 200'000, 0));
  EXPECT_EQ(b.leases_applied(), 2);
  EXPECT_DOUBLE_EQ(b.current_rate(), 20e6);
}

TEST(RepairBudget, ExpiryDropsToFloorUntilRenewed) {
  agent::RepairBudget::Options o;
  o.floor_bytes_per_sec = 64 * kKiB;
  agent::RepairBudget b(o);
  ASSERT_TRUE(b.apply_grant(1, 50e6, /*ttl_us=*/100'000, /*now_us=*/0));
  b.acquire(1, 50'000);  // inside the TTL: leased rate holds
  EXPECT_DOUBLE_EQ(b.current_rate(), 50e6);
  b.acquire(1, 250'000);  // past the TTL: down to the trickle
  EXPECT_DOUBLE_EQ(b.current_rate(), 64.0 * kKiB);
  EXPECT_EQ(b.expirations(), 1);
  // A fresh grant re-arms the lease.
  ASSERT_TRUE(b.apply_grant(2, 30e6, 100'000, 300'000));
  b.acquire(1, 350'000);
  EXPECT_DOUBLE_EQ(b.current_rate(), 30e6);
}

TEST(RepairBudget, GrantRateClampedToFloor) {
  agent::RepairBudget::Options o;
  o.floor_bytes_per_sec = 64 * kKiB;
  agent::RepairBudget b(o);
  // A near-zero share (e.g. a re-admission lease) still trickles.
  ASSERT_TRUE(b.apply_grant(1, 1.0, 200'000, 0));
  EXPECT_DOUBLE_EQ(b.current_rate(), 64.0 * kKiB);
}

TEST(RepairBudget, ReleaseUnblocksAndIsSticky) {
  agent::RepairBudget b(agent::RepairBudget::Options{});
  ASSERT_TRUE(b.apply_grant(1, /*bytes_per_sec=*/1e5, 1'000'000, 0));
  std::thread sender([&] {
    // ~80 s of budget at the leased rate; only release() lets this
    // return promptly.
    b.acquire(8'000'000, 1000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  b.release();
  sender.join();
  // Sticky: neither a late grant nor an expiry re-throttles teardown.
  EXPECT_FALSE(b.apply_grant(2, 1.0, 1000, 2'000'000));
  b.acquire(100'000'000, 5'000'000);  // returns immediately (unlimited)
  EXPECT_DOUBLE_EQ(b.current_rate(), 0.0);
}

}  // namespace
}  // namespace fastpr
