// Cross-cutting simulation properties over a parameter grid: strategy
// orderings, bandwidth monotonicity, traffic accounting, and the MSR
// helper-fraction behaviour — the invariants DESIGN.md §9 lists, swept.
#include <gtest/gtest.h>

#include "core/fastpr.h"
#include "sim/simulator.h"
#include "sim/strategies.h"
#include "util/rng.h"
#include "util/units.h"

namespace fastpr::sim {
namespace {

struct GridParam {
  int num_nodes;
  int n;
  int k;
  core::Scenario scenario;
  uint64_t seed;
};

ExperimentConfig config_from(const GridParam& p) {
  ExperimentConfig cfg;
  cfg.num_nodes = p.num_nodes;
  cfg.num_stripes = 250;
  cfg.n = p.n;
  cfg.k = p.k;
  cfg.chunk_bytes = static_cast<double>(MB(64));
  cfg.disk_bw = MBps(100);
  cfg.net_bw = Gbps(1);
  cfg.hot_standby = 3;
  cfg.scenario = p.scenario;
  cfg.seed = p.seed;
  return cfg;
}

class SimGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(SimGridTest, OrderingInvariantsHold) {
  const auto t = run_experiment(config_from(GetParam()));
  // DESIGN.md §9.5: T_opt <= T_fastpr <= min(T_migration, T_recon).
  EXPECT_GT(t.stf_chunks, 0);
  EXPECT_LE(t.optimum, t.fastpr * 1.001);
  EXPECT_LE(t.fastpr, t.reconstruction_only * 1.001);
  EXPECT_LE(t.fastpr, t.migration_only * 1.001);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimGridTest,
    ::testing::Values(GridParam{30, 6, 4, core::Scenario::kScattered, 1},
                      GridParam{50, 9, 6, core::Scenario::kScattered, 2},
                      GridParam{80, 9, 6, core::Scenario::kScattered, 3},
                      GridParam{40, 14, 10, core::Scenario::kScattered, 4},
                      GridParam{30, 6, 4, core::Scenario::kHotStandby, 5},
                      GridParam{50, 9, 6, core::Scenario::kHotStandby, 6},
                      GridParam{40, 16, 12, core::Scenario::kHotStandby, 7}),
    [](const auto& info) {
      return "M" + std::to_string(info.param.num_nodes) + "_n" +
             std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k) +
             (info.param.scenario == core::Scenario::kScattered ? "_sc"
                                                                : "_hs");
    });

TEST(SimProperties, FasterBandwidthNeverSlowsRepair) {
  auto base = config_from({50, 9, 6, core::Scenario::kScattered, 11});
  double prev = 1e100;
  for (double bn : {0.5, 1.0, 2.0, 5.0}) {
    auto cfg = base;
    cfg.net_bw = Gbps(bn);
    const auto t = run_experiment(cfg);
    EXPECT_LE(t.fastpr, prev * 1.001) << "bn=" << bn;
    prev = t.fastpr;
  }
  prev = 1e100;
  for (double bd : {50.0, 100.0, 200.0, 400.0}) {
    auto cfg = base;
    cfg.disk_bw = MBps(bd);
    const auto t = run_experiment(cfg);
    EXPECT_LE(t.fastpr, prev * 1.001) << "bd=" << bd;
    prev = t.fastpr;
  }
}

TEST(SimProperties, TrafficAccountingMatchesComposition) {
  // Simulated repair traffic: migrations cost 1 chunk, reconstructions
  // k chunks — exact bookkeeping, any plan.
  Rng rng(21);
  auto layout = cluster::StripeLayout::random(40, 9, 300, rng);
  cluster::ClusterState state(
      40, 3, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  cluster::NodeId stf = 0;
  for (cluster::NodeId n = 1; n < 40; ++n) {
    if (layout.load(n) > layout.load(stf)) stf = n;
  }
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);
  core::PlannerOptions popts;
  popts.k_repair = 6;
  popts.chunk_bytes = static_cast<double>(MB(64));
  core::FastPrPlanner planner(layout, state, popts);
  const auto plan = planner.plan_fastpr();

  SimParams sp;
  sp.chunk_bytes = popts.chunk_bytes;
  sp.disk_bw = MBps(100);
  sp.net_bw = Gbps(1);
  sp.k_repair = 6;
  const auto r = simulate(plan, sp);
  EXPECT_EQ(r.repair_traffic_chunks,
            plan.total_migrated() + 6L * plan.total_reconstructed());
}

TEST(SimProperties, MsrFractionSpeedsReconstructionRounds) {
  // Same plan, smaller per-helper traffic → strictly faster rounds
  // whenever reconstruction is the round bottleneck.
  Rng rng(22);
  auto layout = cluster::StripeLayout::random(40, 14, 250, rng);
  cluster::ClusterState state(
      40, 3, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  cluster::NodeId stf = 0;
  for (cluster::NodeId n = 1; n < 40; ++n) {
    if (layout.load(n) > layout.load(stf)) stf = n;
  }
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);
  core::PlannerOptions popts;
  popts.k_repair = 13;  // MSR: d = n - 1
  popts.chunk_bytes = static_cast<double>(MB(64));
  core::FastPrPlanner planner(layout, state, popts);
  const auto plan = planner.plan_reconstruction_only();

  SimParams sp;
  sp.chunk_bytes = popts.chunk_bytes;
  sp.disk_bw = MBps(100);
  sp.net_bw = Gbps(1);
  sp.k_repair = 13;
  const auto rs_like = simulate(plan, sp);
  sp.helper_bytes_fraction = 0.25;  // 1/(d-k+1) with k=10
  const auto msr_like = simulate(plan, sp);
  EXPECT_LT(msr_like.total_time, rs_like.total_time);
  // Resource model agrees on the direction.
  sp.model = TimingModel::kResourceModel;
  const auto msr_resource = simulate(plan, sp);
  sp.helper_bytes_fraction = 1.0;
  const auto rs_resource = simulate(plan, sp);
  EXPECT_LT(msr_resource.total_time, rs_resource.total_time);
}

TEST(SimProperties, RoundTimesSumToTotal) {
  const auto cfg = config_from({30, 6, 4, core::Scenario::kScattered, 31});
  Rng rng(cfg.seed);
  auto layout = cluster::StripeLayout::random(cfg.num_nodes, cfg.n,
                                              cfg.num_stripes, rng);
  cluster::ClusterState state(
      cfg.num_nodes, 3,
      cluster::BandwidthProfile{cfg.disk_bw, cfg.net_bw});
  cluster::NodeId stf = 0;
  for (cluster::NodeId n = 1; n < cfg.num_nodes; ++n) {
    if (layout.load(n) > layout.load(stf)) stf = n;
  }
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);
  core::PlannerOptions popts;
  popts.k_repair = cfg.k;
  popts.chunk_bytes = cfg.chunk_bytes;
  core::FastPrPlanner planner(layout, state, popts);
  const auto plan = planner.plan_fastpr();
  SimParams sp;
  sp.chunk_bytes = cfg.chunk_bytes;
  sp.disk_bw = cfg.disk_bw;
  sp.net_bw = cfg.net_bw;
  sp.k_repair = cfg.k;
  const auto r = simulate(plan, sp);
  ASSERT_EQ(r.round_times.size(), plan.rounds.size());
  double sum = 0;
  for (double t : r.round_times) sum += t;
  EXPECT_NEAR(sum, r.total_time, 1e-9);
}

}  // namespace
}  // namespace fastpr::sim
