// Chaos suite: scripted fault injection (DESIGN.md §7) across many
// seeds. Every scenario runs kNumSeeds seeds starting at
// $FASTPR_CHAOS_SEED_BASE (default 1; CI runs a disjoint base), and
// each run must uphold the repair invariant: as long as every stripe
// retains >= k live chunks, the repair completes with every chunk
// byte-verified at its final destination; otherwise the report
// enumerates exactly the unrepairable chunks. These tests exercise
// wall-clock timeout/probe paths — timings are meaningless here and
// are never reported (EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "agent/testbed.h"
#include "core/repair_plan.h"
#include "core/repair_throttler.h"
#include "ec/rs_code.h"
#include "load/foreground.h"
#include "net/fault_plan.h"
#include "net/topology.h"
#include "telemetry/metrics.h"
#include "util/units.h"

namespace fastpr::agent {
namespace {

constexpr int kNumSeeds = 10;

uint64_t seed_base() {
  const char* env = std::getenv("FASTPR_CHAOS_SEED_BASE");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

/// Small unthrottled testbed with short fault-tolerance timeouts so a
/// stalled round is probed in ~half a second instead of two minutes.
TestbedOptions chaos_options(uint64_t seed) {
  TestbedOptions opts;
  opts.num_storage = 12;
  opts.num_standby = 2;
  opts.disk_bytes_per_sec = 0;  // unthrottled: chaos checks bytes, not time
  opts.net_bytes_per_sec = 0;
  opts.chunk_bytes = 64 * kKiB;
  opts.packet_bytes = 16 * kKiB;
  opts.num_stripes = 20;
  opts.seed = seed;
  opts.round_timeout = std::chrono::milliseconds(400);
  opts.probe_timeout = std::chrono::milliseconds(150);
  opts.retry_backoff = std::chrono::milliseconds(10);
  opts.max_attempts = 6;
  opts.max_round_extensions = 5;
  return opts;
}

/// Testbed construction is deterministic in (options, code), so a
/// fault-free scout run exposes the exact plan a faulty run of the same
/// seed will execute — lets a schedule target plan-dependent nodes.
core::RepairPlan scout_plan(const TestbedOptions& opts,
                            const ec::ErasureCode& code,
                            core::Scenario scenario) {
  Testbed scout(opts, code);
  scout.flag_stf();
  return scout.make_planner(scenario).plan_fastpr();
}

void expect_full_recovery(const Testbed& tb, const core::RepairPlan& plan,
                          const ExecutionReport& report) {
  EXPECT_TRUE(report.success)
      << (report.errors.empty() ? "" : report.errors.front());
  EXPECT_TRUE(report.unrepaired.empty());
  EXPECT_TRUE(tb.verify(report, plan));
}

bool contains_node(const std::vector<cluster::NodeId>& nodes,
                   cluster::NodeId node) {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

TEST(Chaos, HelperCrashMidStreamRecovers) {
  ec::RsCode code(6, 4);
  for (int i = 0; i < kNumSeeds; ++i) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(i);
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto opts = chaos_options(seed);

    const auto scouted =
        scout_plan(opts, code, core::Scenario::kScattered);
    ASSERT_FALSE(scouted.rounds.empty());
    ASSERT_FALSE(scouted.rounds[0].reconstructions.empty());
    const auto victim = scouted.rounds[0].reconstructions[0].sources[0].node;

    // The helper dies two data packets into its very first stream.
    opts.fault_plan = net::FaultPlan::parse(
        "crash node=" + std::to_string(victim) + " after_packets=2\n");
    Testbed tb(opts, code);
    tb.flag_stf();
    const auto plan = tb.make_planner(core::Scenario::kScattered).plan_fastpr();

#if FASTPR_TELEMETRY_ENABLED
    const int64_t retries_before = telemetry::MetricsRegistry::global()
                                       .counter("coordinator.retries")
                                       .value();
#endif
    const auto report = tb.execute(plan);
    expect_full_recovery(tb, plan, report);
    EXPECT_GT(report.retries, 0);
    EXPECT_TRUE(contains_node(report.failed_nodes, victim));
#if FASTPR_TELEMETRY_ENABLED
    EXPECT_GT(telemetry::MetricsRegistry::global()
                  .counter("coordinator.retries")
                  .value(),
              retries_before);
#endif
  }
}

TEST(Chaos, MidChainHopCrashRecovers) {
  // Chain strategy: a MIDDLE hop of a partial-sum chain dies two
  // packets into its forwarding. The running sum it held dies with it;
  // the probe exposes the dead node, and the reissued attempt re-picks
  // a helper chain without it (no global replan) — the repair still
  // completes byte-verified.
  ec::RsCode code(6, 4);
  for (int i = 0; i < kNumSeeds; ++i) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(i);
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto opts = chaos_options(seed);
    opts.repair_strategy = core::StrategyChoice::kChain;

    const auto scouted =
        scout_plan(opts, code, core::Scenario::kScattered);
    ASSERT_FALSE(scouted.rounds.empty());
    ASSERT_FALSE(scouted.rounds[0].reconstructions.empty());
    const auto& first = scouted.rounds[0].reconstructions[0];
    ASSERT_GE(first.sources.size(), 2u);
    // Hop 1: receives hop 0's stream AND forwards — a true mid-chain
    // position whose crash severs the pipeline, not just one source.
    const auto victim = first.sources[1].node;

    opts.fault_plan = net::FaultPlan::parse(
        "crash node=" + std::to_string(victim) + " after_packets=2\n");
    Testbed tb(opts, code);
    tb.flag_stf();
    const auto plan =
        tb.make_planner(core::Scenario::kScattered).plan_fastpr();
    ASSERT_EQ(plan.rounds[0].strategy, core::RepairStrategy::kChain);

#if FASTPR_TELEMETRY_ENABLED
    const int64_t stale_before = telemetry::MetricsRegistry::global()
                                     .counter("agent.stale_packets")
                                     .value();
#endif
    const auto report = tb.execute(plan);
    expect_full_recovery(tb, plan, report);
    EXPECT_GT(report.retries, 0);
    EXPECT_EQ(report.replans, 0);
    EXPECT_TRUE(contains_node(report.failed_nodes, victim));
#if FASTPR_TELEMETRY_ENABLED
    // Leftover packets of cancelled chain attempts must be discarded as
    // stale/dup, never folded into a newer attempt's sum (the byte
    // verification above would catch such corruption).
    EXPECT_GE(telemetry::MetricsRegistry::global()
                  .counter("agent.stale_packets")
                  .value(),
              stale_before);
#endif
  }
}

TEST(Chaos, DestinationCrashRecoversOntoAlternate) {
  ec::RsCode code(6, 4);
  for (int i = 0; i < kNumSeeds; ++i) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(i);
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto opts = chaos_options(seed);

    const auto scouted =
        scout_plan(opts, code, core::Scenario::kHotStandby);
    ASSERT_FALSE(scouted.rounds.empty());
    const auto& first = scouted.rounds[0];
    const auto victim = first.reconstructions.empty()
                            ? first.migrations[0].dst
                            : first.reconstructions[0].dst;

    // Dead from the start: both thresholds zero.
    opts.fault_plan = net::FaultPlan::parse(
        "crash node=" + std::to_string(victim) + "\n");
    Testbed tb(opts, code);
    tb.flag_stf();
    const auto plan =
        tb.make_planner(core::Scenario::kHotStandby).plan_fastpr();

    const auto report = tb.execute(plan);
    expect_full_recovery(tb, plan, report);
    EXPECT_GT(report.retries, 0);
    EXPECT_GT(report.round_extensions, 0);
    EXPECT_TRUE(contains_node(report.failed_nodes, victim));
    for (const auto& done : report.completions) {
      EXPECT_NE(done.dst, victim);
    }
  }
}

TEST(Chaos, StfCrashMidRepairDegradesToReactive) {
  ec::RsCode code(6, 4);
  for (int i = 0; i < kNumSeeds; ++i) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(i);
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto opts = chaos_options(seed);

    // The STF node goes silent 1.5 chunks into its migration traffic;
    // the stalled round's probe detects the death and the rest of the
    // repair replans as pure reactive reconstruction.
    opts.fault_plan =
        net::FaultPlan::parse("crash node=stf after_bytes=98304\n");
    Testbed tb(opts, code);
    const auto stf = tb.flag_stf();
    const auto plan =
        tb.make_planner(core::Scenario::kScattered).plan_fastpr();
    ASSERT_GE(plan.total_migrated(), 2);  // the crash threshold must trip

    const auto report = tb.execute(plan);
    expect_full_recovery(tb, plan, report);
    EXPECT_TRUE(report.degraded_to_reactive);
    EXPECT_GE(report.degraded_at_round, 1);
    EXPECT_EQ(report.replans, 1);
    EXPECT_GT(report.round_extensions, 0);
    EXPECT_TRUE(contains_node(report.failed_nodes, stf));
    EXPECT_EQ(report.repair.degraded_at_round, report.degraded_at_round);
  }
}

TEST(Chaos, StfReadErrorsDegradeToReactive) {
  ec::RsCode code(6, 4);
  for (int i = 0; i < kNumSeeds; ++i) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(i);
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto opts = chaos_options(seed);
    // Every chunk on the STF node hits a latent sector error, so each
    // migration fails fast and converts; the failure threshold then
    // declares the node dead without waiting for any timeout.
    opts.stf_failure_threshold = 2;
    opts.fault_plan = net::FaultPlan::parse("read_error node=stf\n");
    Testbed tb(opts, code);
    tb.flag_stf();
    const auto plan =
        tb.make_planner(core::Scenario::kScattered).plan_migration_only();
    ASSERT_GE(plan.total_migrated(), 2);

#if FASTPR_TELEMETRY_ENABLED
    const int64_t degraded_before = telemetry::MetricsRegistry::global()
                                        .counter("coordinator.degraded_executions")
                                        .value();
#endif
    const auto report = tb.execute(plan);
    expect_full_recovery(tb, plan, report);
    EXPECT_TRUE(report.degraded_to_reactive);
    EXPECT_EQ(report.replans, 1);
    EXPECT_GT(report.retries, 0);
    EXPECT_GT(report.fallback_reconstructions, 0);
#if FASTPR_TELEMETRY_ENABLED
    EXPECT_GT(telemetry::MetricsRegistry::global()
                  .counter("coordinator.degraded_executions")
                  .value(),
              degraded_before);
#endif
  }
}

TEST(Chaos, FlakyNetworkStaysLiveWithinBudgets) {
  ec::RsCode code(6, 4);
  for (int i = 0; i < kNumSeeds; ++i) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(i);
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto opts = chaos_options(seed);
    // Bounded budgets keep liveness provable: at most 3 drops, and the
    // coordinator has 5 extensions per round plus 6 attempts per task —
    // strictly more salvage capacity than the faults can consume.
    opts.fault_plan = net::FaultPlan::parse(
        "seed " + std::to_string(seed) +
        "\n"
        "flaky node=any drop=0.04 max_drops=3 dup=0.04 max_dups=8 "
        "delay=0.1 delay_ms=2 max_delays=50\n");
    Testbed tb(opts, code);
    tb.flag_stf();
    const auto plan =
        tb.make_planner(core::Scenario::kScattered).plan_fastpr();

    const auto report = tb.execute(plan);
    expect_full_recovery(tb, plan, report);
  }
}

TEST(Chaos, InjectedDelaysDoNotFlagPhantomStragglers) {
#if FASTPR_TELEMETRY_ENABLED
  // Flow-accounting property (DESIGN.md §5c): FaultyTransport charges
  // every injected delay to the FlowMonitor, which excludes it from the
  // link's active window — so a link that is slow ONLY because the
  // chaos plan slept on it must NOT be reported as a straggler.
  ec::RsCode code(6, 4);
  const uint64_t seed = seed_base();
  auto opts = chaos_options(seed);
  // Shaped net so the monitor has an expected per-stream rate to judge
  // stragglers against; generous round timeout so the injected delays
  // don't trip retries and muddy the link set.
  opts.net_bytes_per_sec = MBps(2);
  opts.round_timeout = std::chrono::milliseconds(5000);

  const auto scouted = scout_plan(opts, code, core::Scenario::kScattered);
  ASSERT_FALSE(scouted.rounds.empty());
  ASSERT_FALSE(scouted.rounds[0].reconstructions.empty());
  const auto victim = scouted.rounds[0].reconstructions[0].sources[0].node;

  // Every data packet the victim sends sleeps 100 ms — a massive
  // slowdown that, uncredited, would read as a fraction of the plan
  // rate and flag the link.
  opts.fault_plan = net::FaultPlan::parse(
      "seed " + std::to_string(seed) + "\nflaky node=" +
      std::to_string(victim) + " delay=1 delay_ms=100 max_delays=200\n");
  Testbed tb(opts, code);
  tb.flag_stf();
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_fastpr();

  const auto report = tb.execute(plan);
  expect_full_recovery(tb, plan, report);

  ASSERT_FALSE(report.repair.links.empty());
  bool saw_delayed_victim_link = false;
  for (const auto& l : report.repair.links) {
    if (l.injected_delay_us > 0) {
      // With the credit in place the victim's stream has near-zero
      // GENUINE active time (the sleeps pace it below the NIC rate),
      // so its EWMA stays 0 and it cannot be flagged. If the credit
      // ever regresses, the sleeps count as active time, the window
      // folds at a fraction of the plan rate, and this fires.
      EXPECT_FALSE(l.straggler)
          << "link " << l.src << "->" << l.dst
          << " slowed only by injected delay was flagged straggler";
      if (l.src == victim) saw_delayed_victim_link = true;
    }
  }
  // Non-vacuous: the victim's links really carry the injected-delay
  // attribution in the report.
  EXPECT_TRUE(saw_delayed_victim_link);
#else
  GTEST_SKIP() << "telemetry compiled out: no flow monitor";
#endif
}

TEST(Chaos, MultiStfMemberDeathDegradesOnlyItsChunks) {
  // Batch of two STF nodes repaired jointly (DESIGN.md §8); the FIRST
  // member dies 1.5 chunks into its migration traffic. Only its chunks
  // may convert to reactive fallback — the surviving member's repair
  // must finish predictively, with no global replan, and the per-member
  // breakdown must attribute the death correctly. Fresh seed window
  // (base + 50) so the schedule does not simply replay the single-STF
  // scenarios above.
  ec::RsCode code(6, 4);
  int executed = 0;
  for (int i = 0; i < kNumSeeds; ++i) {
    const uint64_t seed = seed_base() + 50 + static_cast<uint64_t>(i);
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto opts = chaos_options(seed);

    // Scout the joint plan: the crash threshold only trips if the dying
    // member ships at least two migration chunks.
    int victim_migrations = 0;
    {
      Testbed scout(opts, code);
      const auto batch = scout.flag_stf_batch(2);
      const auto plan =
          scout.make_multi_planner(core::Scenario::kScattered).plan_fastpr();
      for (const auto& round : plan.rounds) {
        for (const auto& task : round.migrations) {
          victim_migrations += task.src == batch.front() ? 1 : 0;
        }
      }
    }
    if (victim_migrations < 2) continue;
    ++executed;

    // node=stf resolves to the first batch member at flag_stf_batch().
    opts.fault_plan =
        net::FaultPlan::parse("crash node=stf after_bytes=98304\n");
    Testbed tb(opts, code);
    const auto batch = tb.flag_stf_batch(2);
    const auto plan =
        tb.make_multi_planner(core::Scenario::kScattered).plan_fastpr();

    const auto report = tb.execute(plan);
    expect_full_recovery(tb, plan, report);
    EXPECT_TRUE(report.degraded_to_reactive);
    EXPECT_GE(report.degraded_at_round, 1);
    // One member's death never triggers the global replan hook in a
    // batch execution — the others' rounds keep running as planned.
    EXPECT_EQ(report.replans, 0);
    EXPECT_TRUE(contains_node(report.failed_nodes, batch[0]));
    EXPECT_FALSE(contains_node(report.failed_nodes, batch[1]));

    // stf_progress follows plan order (ascending node id), which need
    // not match flag order (load-descending) — locate members by id.
    ASSERT_EQ(report.stf_progress.size(), 2u);
    const size_t dead_idx =
        report.stf_progress[0].stf == batch.front() ? 0 : 1;
    const auto& dead = report.stf_progress[dead_idx];
    const auto& survivor = report.stf_progress[1 - dead_idx];
    ASSERT_EQ(dead.stf, batch.front());
    EXPECT_TRUE(dead.died);
    EXPECT_GE(dead.died_at_round, 1);
    EXPECT_EQ(dead.unrepaired, 0);
    EXPECT_EQ(dead.migrated + dead.reconstructed, dead.planned);
    EXPECT_FALSE(survivor.died);
    EXPECT_EQ(survivor.died_at_round, 0);
    EXPECT_EQ(survivor.unrepaired, 0);
    EXPECT_EQ(survivor.migrated + survivor.reconstructed, survivor.planned);
    ASSERT_EQ(report.repair.per_stf.size(), 2u);
    EXPECT_GE(report.repair.per_stf[dead_idx].died_at_round, 1);
    EXPECT_EQ(report.repair.per_stf[1 - dead_idx].died_at_round, 0);
  }
  // The window must contain at least one seed whose plan migrates >= 2
  // chunks off the first member; otherwise the scenario tested nothing.
  EXPECT_GT(executed, 0);
}

TEST(Chaos, UnrepairableChunksAreEnumeratedExactly) {
  ec::RsCode code(6, 4);
  for (int i = 0; i < kNumSeeds; ++i) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(i);
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto opts = chaos_options(seed);

    // Target one stripe: its STF chunk loses the migration path (STF
    // read error) and two of its five helpers (read errors), leaving
    // 3 < k = 4 live helper chunks — provably unrepairable. Everything
    // else must still complete.
    cluster::ChunkRef doomed;
    cluster::NodeId h1 = cluster::kNoNode;
    cluster::NodeId h2 = cluster::kNoNode;
    {
      Testbed scout(opts, code);
      const auto stf = scout.flag_stf();
      doomed = scout.layout().chunks_on(stf)[0];
      for (const auto node : scout.layout().stripe_nodes(doomed.stripe)) {
        if (node == stf) continue;
        if (h1 == cluster::kNoNode) {
          h1 = node;
        } else if (h2 == cluster::kNoNode) {
          h2 = node;
        }
      }
    }
    const std::string stripe = std::to_string(doomed.stripe);
    opts.fault_plan = net::FaultPlan::parse(
        "read_error node=stf stripe=" + stripe + "\n" +
        "read_error node=" + std::to_string(h1) + " stripe=" + stripe +
        "\n" +
        "read_error node=" + std::to_string(h2) + " stripe=" + stripe +
        "\n");
    Testbed tb(opts, code);
    tb.flag_stf();
    const auto plan =
        tb.make_planner(core::Scenario::kScattered).plan_fastpr();

    const auto report = tb.execute(plan);
    EXPECT_FALSE(report.success);
    ASSERT_EQ(report.unrepaired.size(), 1u);
    EXPECT_EQ(report.unrepaired[0], doomed);
    // Accounting stays exact: completions ∪ unrepaired covers the plan,
    // and every completed chunk byte-verifies at its final destination.
    EXPECT_TRUE(tb.verify(report, plan));
    bool reported = false;
    for (const auto& err : report.errors) {
      reported |= err.find("unrepaired") != std::string::npos;
    }
    EXPECT_TRUE(reported);
  }
}

TEST(Chaos, SlowHelperStretchesTransfersButRepairCompletes) {
  // `slow` verb behavior (DESIGN.md §7): once the victim crosses its
  // byte threshold, every later data packet it sends really takes
  // factor× the nominal transmit time — and unlike flaky delays the
  // extra time is NOT credited as injected, because a genuinely slow
  // NIC is exactly the signal the adaptive throttler and the straggler
  // detector are supposed to see.
  ec::RsCode code(6, 4);
  const uint64_t seed = seed_base();
  auto opts = chaos_options(seed);
  // Generous round timeout: the stretched transfers must complete, not
  // trip retries (liveness under a crash is the other scenarios' job).
  opts.round_timeout = std::chrono::milliseconds(5000);

  const auto scouted = scout_plan(opts, code, core::Scenario::kScattered);
  ASSERT_FALSE(scouted.rounds.empty());
  ASSERT_FALSE(scouted.rounds[0].reconstructions.empty());
  const auto victim = scouted.rounds[0].reconstructions[0].sources[0].node;

  // Arm after one chunk of sends, then every data packet pays 8× the
  // nominal wire time (unthrottled testbed → 1 Gbps nominal, so a
  // 16 KiB packet sleeps ~0.9 ms extra — measurable, wall-clock safe).
  opts.fault_plan = net::FaultPlan::parse(
      "slow node=" + std::to_string(victim) +
      " factor=8 after_bytes=65536\n");
  Testbed tb(opts, code);
  tb.flag_stf();
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_fastpr();

#if FASTPR_TELEMETRY_ENABLED
  const int64_t slowed_before = telemetry::MetricsRegistry::global()
                                    .counter("net.fault.slowed")
                                    .value();
#endif
  const auto report = tb.execute(plan);
  expect_full_recovery(tb, plan, report);
  // A slow node is degraded, not dead: no retries, no failed nodes.
  EXPECT_FALSE(contains_node(report.failed_nodes, victim));
#if FASTPR_TELEMETRY_ENABLED
  EXPECT_GT(telemetry::MetricsRegistry::global()
                .counter("net.fault.slowed")
                .value(),
            slowed_before);
#endif
  // The slow time is deliberately uncredited: no link of the victim may
  // carry injected-delay attribution (that channel is flaky-only).
  for (const auto& l : report.repair.links) {
    if (l.src == victim) {
      EXPECT_EQ(l.injected_delay_us, 0);
    }
  }
}

TEST(Chaos, ForegroundSurvivesThrottledRepairUnderCompoundFaults) {
  // The tentpole robustness scenario: SLO-aware adaptive throttling,
  // live foreground traffic (with degraded reads off the STF node), a
  // flaky network AND a mid-repair helper crash — all at once. The
  // repair must still complete byte-verified, the foreground mix must
  // keep a recorded p99 through the fault window with zero decode
  // mismatches, and the lease machinery must have actually run.
  ec::RsCode code(6, 4);
  const uint64_t seed = seed_base() + 100;  // fresh schedule window
  auto opts = chaos_options(seed);
  // Mild shaping so foreground ops queue behind real buckets; small
  // data volume keeps the wall clock bounded.
  opts.disk_bytes_per_sec = MBps(200);
  opts.net_bytes_per_sec = MBps(100);
  opts.round_timeout = std::chrono::milliseconds(2000);

  const auto scouted = scout_plan(opts, code, core::Scenario::kScattered);
  ASSERT_FALSE(scouted.rounds.empty());
  ASSERT_FALSE(scouted.rounds[0].reconstructions.empty());
  const auto victim = scouted.rounds[0].reconstructions[0].sources[0].node;

  opts.fault_plan = net::FaultPlan::parse(
      "seed " + std::to_string(seed) + "\n" +
      "crash node=" + std::to_string(victim) +
      " after_packets=2\n"
      "flaky node=any drop=0.03 max_drops=3 delay=0.1 delay_ms=2 "
      "max_delays=40\n");
  core::ThrottlerOptions throttle;
  throttle.total_bytes_per_sec = MBps(40);
  throttle.slo_p99_seconds = 0.050;
  throttle.adaptive = true;
  opts.throttle = throttle;

  Testbed tb(opts, code);
  const auto stf = tb.flag_stf();
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_fastpr();

  load::WorkloadOptions wopts;
  wopts.ops_per_sec = 400;
  wopts.threads = 2;
  wopts.op_bytes = 16 * kKiB;
  wopts.seed = seed;
  wopts.verify_degraded = true;
  load::ForegroundWorkload fg(tb, code, wopts);
  fg.set_degraded(stf);
  tb.set_pressure_source(&fg);
  fg.start();
  const auto report = tb.execute(plan);
  fg.stop();

  expect_full_recovery(tb, plan, report);
  EXPECT_GT(report.retries, 0);
  EXPECT_TRUE(contains_node(report.failed_nodes, victim));

  // Foreground kept flowing through the fault window, its degraded
  // reads decoded byte-exactly, and its tail latency was recorded —
  // LatencyWindow works with telemetry compiled out too.
  const auto stats = fg.stats();
  EXPECT_GT(stats.reads + stats.degraded_reads + stats.writes, 0);
  EXPECT_GT(stats.degraded_reads, 0);
  EXPECT_EQ(stats.verify_failures, 0);
  EXPECT_GT(stats.p99_seconds, 0);

  // The lease machinery really ran under the faults.
  ASSERT_NE(tb.throttler(), nullptr);
  const auto tstats = tb.throttler()->stats();
  EXPECT_GT(tstats.leases_granted, 0);
  EXPECT_GT(tstats.budget_bytes_per_sec, 0);
}

TEST(Chaos, BandwidthDriftTriggersReplanAndStillVerifies) {
  // Mid-repair bandwidth replanning end to end (DESIGN.md §11): on a
  // 12x2-racked, bandwidth-shaped testbed the two most-loaded helper
  // nodes are slowed 96x from the first byte. The drift trigger
  // (FlowMonitor EWMA vs plan rate) must fire exactly once, the
  // replanned tail must still byte-verify, and the control run with
  // the trigger disabled must not replan. Unlike the rest of this
  // suite the scenario is bandwidth-SHAPED, not unthrottled — the
  // drift signal is measured/expected, so an expectation must exist —
  // and runs one pinned seed: two multi-second executions, not a
  // sweep (bench_topology carries the timing claim; this pins the
  // control flow). The 96x factor overcomes the 4 sender workers
  // whose overlapping sleeps dilute the slow verb ~4x.
  ec::RsCode code(9, 6);
  const auto make_options = [](bool replanning) {
    TestbedOptions opts;
    opts.num_storage = 24;
    opts.num_standby = 3;
    opts.disk_bytes_per_sec = MBps(142) / 4;
    opts.net_bytes_per_sec = Gbps(5) / 4;
    opts.chunk_bytes = 256 * kKiB;
    opts.packet_bytes = 128 * kKiB;
    opts.num_stripes = 80;
    opts.seed = 11;
    opts.round_timeout = std::chrono::minutes(10);
    opts.topology = net::Topology(12, 2, net::Oversub(2.0));
    if (replanning) {
      opts.bandwidth_replan.enabled = true;
      opts.bandwidth_replan.min_breach_rounds = 1;
      opts.bandwidth_replan.max_replans = 1;
    }
    return opts;
  };

  // Aim the slow verbs via a fault-free scout: the two most-loaded
  // non-STF nodes are the helpers nearly every round reads from.
  auto scout_opts = make_options(false);
  Testbed scout(scout_opts, code);
  const auto stf = scout.flag_stf();
  std::vector<cluster::NodeId> by_load;
  for (cluster::NodeId node = 0; node < scout_opts.num_storage; ++node) {
    if (node != stf) by_load.push_back(node);
  }
  std::stable_sort(by_load.begin(), by_load.end(),
                   [&](cluster::NodeId a, cluster::NodeId b) {
                     return scout.layout().load(a) > scout.layout().load(b);
                   });
  const std::vector<cluster::NodeId> slowed{by_load[0], by_load[1]};
  net::FaultPlan faults;
  faults.slow.push_back({slowed[0], 96.0, 0});
  faults.slow.push_back({slowed[1], 96.0, 0});

  const auto run = [&](bool replanning) {
    auto opts = make_options(replanning);
    opts.fault_plan = faults;
    Testbed tb(opts, code);
    tb.flag_stf();
    const auto plan =
        tb.make_planner(core::Scenario::kScattered).plan_fastpr();
    const auto report = tb.execute(plan);
    expect_full_recovery(tb, plan, report);
    // Slowness is not death: the probes must never declare the slowed
    // helpers failed.
    EXPECT_FALSE(contains_node(report.failed_nodes, slowed[0]));
    EXPECT_FALSE(contains_node(report.failed_nodes, slowed[1]));
    EXPECT_FALSE(report.degraded_to_reactive);
    return report;
  };

  const auto treated = run(/*replanning=*/true);
  const auto control = run(/*replanning=*/false);
#if FASTPR_TELEMETRY_ENABLED
  // The drift signal needs flow telemetry; with it compiled out both
  // arms run the original plan to completion (verified above).
  EXPECT_EQ(treated.bandwidth_replans, 1);
  EXPECT_EQ(control.bandwidth_replans, 0);
#ifdef FASTPR_SANITIZERS_ENABLED
  // Sanitizer compute inflation makes most links measure slow, so the
  // replan deprioritizes half the cluster and the plan-quality win
  // evaporates; both arms still ran byte-verified with the replan
  // counts pinned above. Only the timing claim is void (the release
  // gap is ~3x; bench_topology carries the asserted number).
  GTEST_SKIP() << "wall-clock comparison is meaningless under sanitizers "
               << "(treated=" << treated.total_seconds << "s control="
               << control.total_seconds << "s)";
#else
  // The replanned tail routes around the slowed helpers while the
  // control keeps paying the 96x sleeps — ~3x apart in release.
  EXPECT_LT(treated.total_seconds, control.total_seconds);
#endif
#endif
}

}  // namespace
}  // namespace fastpr::agent
