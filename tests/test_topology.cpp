// Topology-aware repair (DESIGN.md §11): the rack model itself
// (Oversub validation, the "<racks>x<nodes>" parser, the block
// mapping), the flat-reduction differentials — a single-rack topology
// must be BIT-IDENTICAL to no topology, oversubscription 1.0 must
// leave every cost prediction EXPECT_DOUBLE_EQ-equal to the flat
// closed forms — and the structural plan-around of
// plan_fastpr_remaining (deprioritized helpers serve zero reads when
// the stripes allow it, and repairability survives when they don't).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/stripe_layout.h"
#include "core/cost_model.h"
#include "core/fastpr.h"
#include "core/multi_stf.h"
#include "core/repair_plan.h"
#include "ec/rs_code.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/units.h"

namespace fastpr {
namespace {

using cluster::ChunkRef;
using cluster::NodeId;

TEST(Oversub, ValidatesAndPassesThrough) {
  EXPECT_EQ(net::Oversub(1.0), 1.0);
  EXPECT_EQ(net::Oversub(4.0), 4.0);
  // f < 1 would mean the spine outruns the racks it aggregates.
  EXPECT_THROW(net::Oversub(0.99), CheckFailure);
  EXPECT_THROW(net::Oversub(0.0), CheckFailure);
  EXPECT_THROW(net::Oversub(-2.0), CheckFailure);
}

TEST(Topology, BlockMappingAndOverflowRacks) {
  const net::Topology topo(4, 6, net::Oversub(2.0));
  EXPECT_EQ(topo.racks(), 4);
  EXPECT_EQ(topo.nodes_per_rack(), 6);
  EXPECT_EQ(topo.num_nodes(), 24);
  EXPECT_FALSE(topo.is_flat());
  EXPECT_EQ(topo.rack_of(0), 0);
  EXPECT_EQ(topo.rack_of(5), 0);
  EXPECT_EQ(topo.rack_of(6), 1);
  EXPECT_EQ(topo.rack_of(23), 3);
  // Ids past racks() * nodes_per_rack() (spares, coordinator) land in
  // overflow racks through the same formula.
  EXPECT_EQ(topo.rack_of(24), 4);
  EXPECT_EQ(topo.rack_of(29), 4);
  EXPECT_EQ(topo.rack_of(30), 5);
  EXPECT_TRUE(topo.same_rack(0, 5));
  EXPECT_FALSE(topo.same_rack(5, 6));
  EXPECT_DOUBLE_EQ(topo.cross_rack_penalty(), 2.0);
  // Shared uplink: nodes_per_rack * bn / f.
  EXPECT_DOUBLE_EQ(topo.rack_link_capacity(Gbps(1)),
                   6.0 * Gbps(1) / 2.0);
}

TEST(Topology, FlatAndSingleRack) {
  const auto flat = net::Topology::flat(10);
  EXPECT_TRUE(flat.is_flat());
  EXPECT_EQ(flat.racks(), 1);
  EXPECT_EQ(flat.nodes_per_rack(), 10);
  EXPECT_DOUBLE_EQ(flat.oversubscription(), 1.0);
  // One rack is flat regardless of f: no transfer ever crosses racks.
  EXPECT_TRUE(net::Topology(1, 24, net::Oversub(8.0)).is_flat());
  EXPECT_FALSE(net::Topology(2, 1, net::Oversub(1.0)).is_flat());
}

TEST(Topology, ParseAcceptsSpecAndRejectsMalformed) {
  const auto topo = net::Topology::parse("4x6", net::Oversub(2.0));
  EXPECT_EQ(topo.racks(), 4);
  EXPECT_EQ(topo.nodes_per_rack(), 6);
  EXPECT_DOUBLE_EQ(topo.oversubscription(), 2.0);
  for (const char* bad : {"", "4", "4x", "x6", "0x6", "4x0", "ax6"}) {
    SCOPED_TRACE(std::string("spec \"") + bad + "\"");
    EXPECT_THROW(net::Topology::parse(bad, net::Oversub(1.0)),
                 CheckFailure);
  }
}

core::ModelParams base_params() {
  core::ModelParams p;
  p.num_nodes = 48;
  p.stf_chunks = 200;
  p.chunk_bytes = static_cast<double>(MB(64));
  p.disk_bw = MBps(100);
  p.net_bw = Gbps(1);
  p.k_repair = 6;
  return p;
}

TEST(TopologyCostModel, OversubOneReducesExactlyToFlatForms) {
  // With f = 1 the cross-rack multiplier is exactly 1: even fully
  // cross-rack traffic prices identically to Equations 1-6.
  const core::CostModel flat{base_params()};
  auto p = base_params();
  p.oversubscription = net::Oversub(1.0);
  p.cross_rack_helper_fraction = 1.0;
  p.cross_rack_migration_fraction = 1.0;
  const core::CostModel racked{p};
  EXPECT_DOUBLE_EQ(racked.tm(), flat.tm());
  for (const double g : {1.0, 3.0, 7.0}) {
    EXPECT_DOUBLE_EQ(racked.tr(g), flat.tr(g));
  }
}

TEST(TopologyCostModel, ZeroCrossRackFractionsReduceExactly) {
  // Conversely, f > 1 with no traffic crossing racks is also flat.
  const core::CostModel flat{base_params()};
  auto p = base_params();
  p.oversubscription = net::Oversub(8.0);
  const core::CostModel racked{p};
  EXPECT_DOUBLE_EQ(racked.tm(), flat.tm());
  EXPECT_DOUBLE_EQ(racked.tr(3.0), flat.tr(3.0));
}

TEST(TopologyCostModel, CrossRackTrafficIsChargedThePenalty) {
  const core::CostModel flat{base_params()};
  auto helper = base_params();
  helper.oversubscription = net::Oversub(4.0);
  helper.cross_rack_helper_fraction = 1.0;
  const core::CostModel helper_racked{helper};
  // Helper traffic feeds reconstruction, not migration.
  EXPECT_DOUBLE_EQ(helper_racked.tm(), flat.tm());
  EXPECT_GT(helper_racked.tr(3.0), flat.tr(3.0));

  auto migration = base_params();
  migration.oversubscription = net::Oversub(4.0);
  migration.cross_rack_migration_fraction = 1.0;
  const core::CostModel migration_racked{migration};
  EXPECT_GT(migration_racked.tm(), flat.tm());
  EXPECT_DOUBLE_EQ(migration_racked.tr(3.0), flat.tr(3.0));
}

/// Field-by-field plan equality (same as test_multi_stf's helper).
void expect_plans_identical(const core::RepairPlan& a,
                            const core::RepairPlan& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  EXPECT_EQ(a.stf_node, b.stf_node);
  for (size_t r = 0; r < a.rounds.size(); ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    const auto& ra = a.rounds[r];
    const auto& rb = b.rounds[r];
    ASSERT_EQ(ra.migrations.size(), rb.migrations.size());
    for (size_t i = 0; i < ra.migrations.size(); ++i) {
      EXPECT_EQ(ra.migrations[i].chunk, rb.migrations[i].chunk);
      EXPECT_EQ(ra.migrations[i].src, rb.migrations[i].src);
      EXPECT_EQ(ra.migrations[i].dst, rb.migrations[i].dst);
    }
    ASSERT_EQ(ra.reconstructions.size(), rb.reconstructions.size());
    for (size_t i = 0; i < ra.reconstructions.size(); ++i) {
      const auto& task_a = ra.reconstructions[i];
      const auto& task_b = rb.reconstructions[i];
      EXPECT_EQ(task_a.chunk, task_b.chunk);
      EXPECT_EQ(task_a.dst, task_b.dst);
      ASSERT_EQ(task_a.sources.size(), task_b.sources.size());
      for (size_t s = 0; s < task_a.sources.size(); ++s) {
        EXPECT_EQ(task_a.sources[s].node, task_b.sources[s].node);
        EXPECT_EQ(task_a.sources[s].chunk, task_b.sources[s].chunk);
      }
    }
  }
}

TEST(TopologyDifferential, SingleRackPlansBitIdenticalToFlat) {
  // A single-rack topology (any f) must leave the whole planning
  // pipeline on the legacy code path: bit-identical plans and
  // EXPECT_DOUBLE_EQ-equal cost predictions, for both scenarios.
  for (auto scenario :
       {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
    SCOPED_TRACE(core::to_string(scenario));
    Rng rng(7);
    const auto layout = cluster::StripeLayout::random(
        /*num_nodes=*/20, /*chunks_per_stripe=*/9, /*num_stripes=*/100,
        rng);
    cluster::ClusterState state(
        20, /*num_hot_standby=*/3,
        cluster::BandwidthProfile{MBps(100), Gbps(1)});
    NodeId stf = 0;
    for (NodeId node = 1; node < 20; ++node) {
      if (layout.load(node) > layout.load(stf)) stf = node;
    }
    state.set_health(stf, cluster::NodeHealth::kSoonToFail);

    core::PlannerOptions options;
    options.scenario = scenario;
    options.k_repair = 6;
    options.chunk_bytes = static_cast<double>(MB(64));
    core::FastPrPlanner flat(layout, state, options);

    const net::Topology single_rack(1, 20, net::Oversub(8.0));
    auto racked_options = options;
    racked_options.topology = &single_rack;
    core::FastPrPlanner racked(layout, state, racked_options);

    expect_plans_identical(flat.plan_fastpr(), racked.plan_fastpr());
    const auto cm_flat = flat.cost_model();
    const auto cm_racked = racked.cost_model();
    EXPECT_DOUBLE_EQ(cm_flat.tm(), cm_racked.tm());
    EXPECT_DOUBLE_EQ(cm_flat.tr(3.0), cm_racked.tr(3.0));
  }
}

TEST(TopologyDifferential, MultiRackOversubOneCostsMatchFlat) {
  // Multi-rack at f = 1: the plan may differ (the failure-domain
  // invariant binds), but every cost prediction and the racked
  // simulator's replay must price both plans identically — the rack
  // terms vanish by construction.
  ec::RsCode code(9, 6);
  Rng rng(3);
  const int num_storage = 48;
  const auto layout = cluster::StripeLayout::random_racked(
      num_storage, code.n(), /*num_stripes=*/120, /*nodes_per_rack=*/4,
      rng);
  cluster::ClusterState state(
      num_storage, 3, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  NodeId stf = 0;
  for (NodeId node = 1; node < num_storage; ++node) {
    if (layout.load(node) > layout.load(stf)) stf = node;
  }
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);
  const net::Topology topo(12, 4, net::Oversub(1.0));

  core::PlannerOptions options;
  options.scenario = core::Scenario::kScattered;
  options.k_repair = code.repair_fetch_count(0);
  options.chunk_bytes = static_cast<double>(MB(64));
  options.code = &code;
  core::FastPrPlanner flat(layout, state, options);
  auto racked_options = options;
  racked_options.topology = &topo;
  core::FastPrPlanner racked(layout, state, racked_options);

  const auto cm_flat = flat.cost_model();
  const auto cm_racked = racked.cost_model();
  EXPECT_DOUBLE_EQ(cm_flat.tm(), cm_racked.tm());
  EXPECT_DOUBLE_EQ(cm_flat.tr(5.0), cm_racked.tr(5.0));

  sim::SimParams sp;
  sp.chunk_bytes = static_cast<double>(MB(64));
  sp.disk_bw = MBps(100);
  sp.net_bw = Gbps(1);
  sp.k_repair = code.repair_fetch_count(0);
  sp.hot_standby = 3;
  sp.scenario = core::Scenario::kScattered;
  sp.topo_racks = 12;
  sp.topo_nodes_per_rack = 4;
  sp.oversubscription = net::Oversub(1.0);
  const double flat_total = sim::simulate(flat.plan_fastpr(), sp).total_time;
  const double rack_total =
      sim::simulate(racked.plan_fastpr(), sp).total_time;
  EXPECT_EQ(rack_total, flat_total);  // bit-identical, not just close
}

TEST(TopologyDifferential, MultiRackPlanSatisfiesRackInvariant) {
  ec::RsCode code(9, 6);
  Rng rng(5);
  const int num_storage = 24;
  const auto layout = cluster::StripeLayout::random_racked(
      num_storage, code.n(), /*num_stripes=*/80, /*nodes_per_rack=*/2,
      rng);
  cluster::ClusterState state(
      num_storage, 3, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  NodeId stf = 0;
  for (NodeId node = 1; node < num_storage; ++node) {
    if (layout.load(node) > layout.load(stf)) stf = node;
  }
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);
  const net::Topology topo(12, 2, net::Oversub(4.0));

  core::PlannerOptions options;
  options.scenario = core::Scenario::kScattered;
  options.k_repair = code.repair_fetch_count(0);
  options.chunk_bytes = static_cast<double>(MB(64));
  options.code = &code;
  options.topology = &topo;
  core::FastPrPlanner planner(layout, state, options);
  const auto plan = planner.plan_fastpr();
  EXPECT_EQ(plan.total_repaired(), layout.load(stf));
  // Throws CheckFailure if any rack ends up with two chunks of a stripe.
  core::validate_plan(plan, layout, state, options.k_repair, &code, 1,
                      &topo);
}

int reads_on(const core::RepairPlan& plan,
             const std::vector<NodeId>& nodes) {
  const std::set<NodeId> targets(nodes.begin(), nodes.end());
  int reads = 0;
  for (const auto& round : plan.rounds) {
    for (const auto& task : round.reconstructions) {
      for (const auto& read : task.sources) {
        reads += targets.count(read.node) != 0 ? 1 : 0;
      }
    }
  }
  return reads;
}

TEST(BandwidthReplanPlanning, DeprioritizedHelpersServeZeroReads) {
  // RS(9,6) on 24 nodes: dropping 2 of a stripe's 8 surviving helpers
  // still leaves >= 6, so EVERY chunk clears the structural
  // plan-around's fast-helper test and the replanned rounds must carry
  // exactly zero reads from the deprioritized nodes — not merely few
  // (the preference-only ordering cannot promise that once rounds
  // saturate; the reduced-source set formation does).
  ec::RsCode code(9, 6);
  Rng rng(11);
  const int num_storage = 24;
  const auto layout = cluster::StripeLayout::random_racked(
      num_storage, code.n(), /*num_stripes=*/80, /*nodes_per_rack=*/2,
      rng);
  cluster::ClusterState state(
      num_storage, 3, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  std::vector<NodeId> by_load(num_storage);
  for (NodeId node = 0; node < num_storage; ++node) by_load[node] = node;
  std::stable_sort(by_load.begin(), by_load.end(),
                   [&](NodeId a, NodeId b) {
                     return layout.load(a) > layout.load(b);
                   });
  const NodeId stf = by_load[0];
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);
  const std::vector<NodeId> stragglers{by_load[1], by_load[2]};
  const net::Topology topo(12, 2, net::Oversub(2.0));

  core::PlannerOptions options;
  options.scenario = core::Scenario::kScattered;
  options.k_repair = code.repair_fetch_count(0);
  options.chunk_bytes = static_cast<double>(MB(64));
  options.code = &code;
  options.topology = &topo;
  core::FastPrPlanner planner(layout, state, options);
  const auto plan = planner.plan_fastpr_remaining({}, stragglers);

  EXPECT_EQ(plan.total_repaired(), layout.load(stf));
  core::validate_plan(plan, layout, state, options.k_repair, &code, 1,
                      &topo);
  EXPECT_EQ(reads_on(plan, stragglers), 0);
  // Sanity: the normal plan DOES read from those heavily-loaded nodes,
  // so zero above reflects the plan-around, not a vacuous layout.
  EXPECT_GT(reads_on(planner.plan_fastpr(), stragglers), 0);
}

TEST(BandwidthReplanPlanning, IndispensableStragglerStillServes) {
  // RS(7,6): every stripe has exactly 6 surviving helpers — the bare
  // k' — so deprioritizing a helper of an STF stripe makes it
  // indispensable. The fallback path must keep reading from it rather
  // than sacrifice repairability.
  ec::RsCode code(7, 6);
  Rng rng(2);
  const int num_storage = 10;
  const auto layout = cluster::StripeLayout::random(
      num_storage, code.n(), /*num_stripes=*/20, rng);
  cluster::ClusterState state(
      num_storage, 2, cluster::BandwidthProfile{MBps(100), Gbps(1)});
  NodeId stf = 0;
  for (NodeId node = 1; node < num_storage; ++node) {
    if (layout.load(node) > layout.load(stf)) stf = node;
  }
  state.set_health(stf, cluster::NodeHealth::kSoonToFail);
  // A helper sharing a stripe with the STF node: indispensable there.
  NodeId straggler = -1;
  for (ChunkRef chunk : layout.chunks_on(stf)) {
    for (NodeId node = 0; node < num_storage; ++node) {
      if (node != stf && layout.stripe_uses_node(chunk.stripe, node)) {
        straggler = node;
        break;
      }
    }
    if (straggler >= 0) break;
  }
  ASSERT_GE(straggler, 0);

  core::PlannerOptions options;
  options.scenario = core::Scenario::kScattered;
  options.k_repair = code.repair_fetch_count(0);
  options.chunk_bytes = static_cast<double>(MB(64));
  options.code = &code;
  core::FastPrPlanner planner(layout, state, options);
  const auto plan = planner.plan_fastpr_remaining({}, {straggler});

  EXPECT_EQ(plan.total_repaired(), layout.load(stf));
  core::validate_plan(plan, layout, state, options.k_repair, &code);
  EXPECT_GT(reads_on(plan, {straggler}), 0);
}

}  // namespace
}  // namespace fastpr
