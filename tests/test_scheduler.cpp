// Algorithm 2: repair scheduling — exact-once coverage, quota math,
// largest-set-reconstructs policy, the paper's Figure 6 example.
#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <set>

#include "util/units.h"

namespace fastpr::core {
namespace {

using cluster::ChunkRef;

/// Builds d reconstruction sets with the given sizes; chunk identities
/// are synthesized (stripe ids unique across all sets).
std::vector<std::vector<ChunkRef>> make_sets(
    const std::vector<int>& sizes) {
  std::vector<std::vector<ChunkRef>> sets;
  int32_t next_stripe = 0;
  for (int size : sizes) {
    std::vector<ChunkRef> set;
    for (int i = 0; i < size; ++i) set.push_back(ChunkRef{next_stripe++, 0});
    sets.push_back(std::move(set));
  }
  return sets;
}

CostModel scattered_model(int stf_chunks) {
  ModelParams p;
  p.num_nodes = 100;
  p.stf_chunks = stf_chunks;
  p.chunk_bytes = static_cast<double>(MB(64));
  p.disk_bw = MBps(100);
  p.net_bw = Gbps(1);
  p.k_repair = 6;
  p.scenario = Scenario::kScattered;
  return CostModel(p);
}

int total_chunks(const std::vector<std::vector<ChunkRef>>& sets) {
  int total = 0;
  for (const auto& s : sets) total += static_cast<int>(s.size());
  return total;
}

void check_exact_once(const std::vector<std::vector<ChunkRef>>& sets,
                      const std::vector<ScheduledRound>& rounds) {
  std::set<std::pair<int32_t, int32_t>> seen;
  int scheduled = 0;
  for (const auto& round : rounds) {
    for (const auto& c : round.reconstruct) {
      EXPECT_TRUE(seen.emplace(c.stripe, c.index).second);
      ++scheduled;
    }
    for (const auto& c : round.migrate) {
      EXPECT_TRUE(seen.emplace(c.stripe, c.index).second);
      ++scheduled;
    }
  }
  EXPECT_EQ(scheduled, total_chunks(sets));
}

TEST(Scheduler, Figure6Example) {
  // Paper Figure 6: sets of sizes {9,7,6,4,3,2,1} with cm fixed at 4
  // complete in exactly 3 rounds:
  //   round 1: reconstruct 9, migrate {1,2,1of3};
  //   round 2: reconstruct 7, migrate {2of3..wait — see figure}:
  //     migrate {remaining 2 of R5, 2 of R4'};
  //   round 3: reconstruct 6, migrate remaining 2 (R4).
  const auto sets = make_sets({9, 7, 6, 4, 3, 2, 1});
  SchedulerOptions opts;
  opts.fixed_migration_quota = 4;
  const auto rounds =
      schedule_repair(sets, scattered_model(32), opts);
  check_exact_once(sets, rounds);
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_EQ(rounds[0].reconstruct.size(), 9u);
  EXPECT_EQ(rounds[0].migrate.size(), 4u);
  EXPECT_EQ(rounds[1].reconstruct.size(), 7u);
  EXPECT_EQ(rounds[1].migrate.size(), 4u);
  EXPECT_EQ(rounds[2].reconstruct.size(), 6u);
  EXPECT_EQ(rounds[2].migrate.size(), 2u);
}

TEST(Scheduler, LargestSetReconstructsEachRound) {
  const auto sets = make_sets({5, 8, 3, 6, 2});
  SchedulerOptions opts;
  opts.fixed_migration_quota = 2;
  const auto rounds = schedule_repair(sets, scattered_model(24), opts);
  check_exact_once(sets, rounds);
  // Rounds reconstruct in descending size order.
  for (size_t i = 1; i < rounds.size(); ++i) {
    EXPECT_LE(rounds[i].reconstruct.size(),
              rounds[i - 1].reconstruct.size());
  }
  EXPECT_EQ(rounds[0].reconstruct.size(), 8u);
}

TEST(Scheduler, QuotaRespectedEveryRound) {
  const auto sets = make_sets({10, 9, 8, 7, 6, 5, 4, 3, 2, 1});
  SchedulerOptions opts;
  opts.fixed_migration_quota = 3;
  const auto rounds = schedule_repair(sets, scattered_model(55), opts);
  check_exact_once(sets, rounds);
  for (size_t i = 0; i < rounds.size(); ++i) {
    // Intermediate rounds migrate exactly cm; only the final round may
    // migrate less.
    if (i + 1 < rounds.size()) {
      EXPECT_EQ(rounds[i].migrate.size(), 3u);
    } else {
      EXPECT_LE(rounds[i].migrate.size(), 3u);
    }
  }
}

TEST(Scheduler, ZeroQuotaDegeneratesToReconstructionOnly) {
  const auto sets = make_sets({4, 3, 2});
  SchedulerOptions opts;
  opts.fixed_migration_quota = 0;
  const auto rounds = schedule_repair(sets, scattered_model(9), opts);
  check_exact_once(sets, rounds);
  EXPECT_EQ(rounds.size(), 3u);
  for (const auto& r : rounds) EXPECT_TRUE(r.migrate.empty());
}

TEST(Scheduler, HugeQuotaMigratesEverythingButLargest) {
  const auto sets = make_sets({6, 3, 3, 2});
  SchedulerOptions opts;
  opts.fixed_migration_quota = 100;
  const auto rounds = schedule_repair(sets, scattered_model(14), opts);
  check_exact_once(sets, rounds);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].reconstruct.size(), 6u);
  EXPECT_EQ(rounds[0].migrate.size(), 8u);
}

TEST(Scheduler, SingleSet) {
  const auto sets = make_sets({7});
  const auto rounds = schedule_repair(sets, scattered_model(7), {});
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].reconstruct.size(), 7u);
  EXPECT_TRUE(rounds[0].migrate.empty());
}

TEST(Scheduler, EmptyInput) {
  const auto rounds = schedule_repair({}, scattered_model(1), {});
  EXPECT_TRUE(rounds.empty());
}

TEST(Scheduler, ModelDerivedQuotaMatchesCostModel) {
  const auto sets = make_sets({16, 16, 16, 2, 2, 2, 2, 2});
  const auto model = scattered_model(58);
  const auto rounds = schedule_repair(sets, model, {});
  check_exact_once(sets, rounds);
  // First round's migration count equals cm = floor(tr(16)/tm).
  const int expected_cm = model.migration_quota(16);
  ASSERT_FALSE(rounds.empty());
  EXPECT_EQ(static_cast<int>(rounds[0].migrate.size()),
            std::min(expected_cm, 10));
}

TEST(Scheduler, MaxRoundRepairsCapsQuota) {
  const auto sets = make_sets({10, 4, 4, 4});
  SchedulerOptions opts;
  opts.fixed_migration_quota = 50;
  opts.max_round_repairs = 12;  // cr=10 leaves room for only 2
  const auto rounds = schedule_repair(sets, scattered_model(22), opts);
  check_exact_once(sets, rounds);
  for (const auto& r : rounds) {
    EXPECT_LE(r.reconstruct.size() + r.migrate.size(), 12u);
  }
}

TEST(Scheduler, RoundCountNeverExceedsSetCount) {
  for (int quota : {0, 1, 2, 5, 9}) {
    const auto sets = make_sets({9, 7, 6, 4, 3, 2, 1});
    SchedulerOptions opts;
    opts.fixed_migration_quota = quota;
    const auto rounds = schedule_repair(sets, scattered_model(32), opts);
    check_exact_once(sets, rounds);
    EXPECT_LE(rounds.size(), sets.size()) << "quota=" << quota;
  }
}

TEST(Scheduler, ResolveStrategyHonorsChoice) {
  const CostModel model = scattered_model(32);
  EXPECT_EQ(resolve_strategy(StrategyChoice::kFanIn, model, 10),
            RepairStrategy::kFanIn);
  EXPECT_EQ(resolve_strategy(StrategyChoice::kChain, model, 10),
            RepairStrategy::kChain);
  // kAuto with packet_bytes unset must stay fan-in (tr_chain undefined).
  EXPECT_EQ(resolve_strategy(StrategyChoice::kAuto, model, 10),
            RepairStrategy::kFanIn);
}

TEST(Scheduler, AutoResolvesPerCostModelCrossover) {
  ModelParams p;
  p.num_nodes = 100;
  p.stf_chunks = 32;
  p.chunk_bytes = static_cast<double>(MB(64));
  p.disk_bw = MBps(100);
  p.net_bw = Gbps(1);
  p.k_repair = 6;
  p.scenario = Scenario::kScattered;
  p.chain_hop_overhead_seconds = 500e-6;
  p.packet_bytes = static_cast<double>(256 * kKiB);
  EXPECT_EQ(resolve_strategy(StrategyChoice::kAuto, CostModel(p), 10),
            RepairStrategy::kChain);
  p.packet_bytes = static_cast<double>(1 * kKiB);
  EXPECT_EQ(resolve_strategy(StrategyChoice::kAuto, CostModel(p), 10),
            RepairStrategy::kFanIn);
}

TEST(Scheduler, RoundsCarryChosenStrategyAndChainQuota) {
  const auto sets = make_sets({9, 7, 6, 4, 3, 2, 1});
  ModelParams p;
  p.num_nodes = 100;
  p.stf_chunks = 32;
  p.chunk_bytes = static_cast<double>(MB(64));
  p.disk_bw = MBps(100);
  p.net_bw = Gbps(1);
  p.k_repair = 6;
  p.scenario = Scenario::kScattered;
  p.chain_hop_overhead_seconds = 500e-6;
  p.packet_bytes = static_cast<double>(256 * kKiB);
  const CostModel model(p);
  SchedulerOptions opts;
  opts.strategy = StrategyChoice::kChain;
  const auto rounds = schedule_repair(sets, model, opts);
  check_exact_once(sets, rounds);
  for (const auto& round : rounds) {
    EXPECT_EQ(round.strategy, RepairStrategy::kChain);
    // The quota honors the chain's (shorter) round time.
    const int cr = static_cast<int>(round.reconstruct.size());
    EXPECT_LE(static_cast<int>(round.migrate.size()),
              model.migration_quota(cr, RepairStrategy::kChain));
  }
  // Default options keep the fan-in schedule.
  const auto fanin_rounds = schedule_repair(sets, model);
  for (const auto& round : fanin_rounds) {
    EXPECT_EQ(round.strategy, RepairStrategy::kFanIn);
  }
}

}  // namespace
}  // namespace fastpr::core
