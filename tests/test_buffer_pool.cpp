// Buffer pool: recycling semantics, capacity classes, stats accounting,
// handle lifetime (including outliving the pool), and thread safety.
#include "util/buffer_pool.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/check.h"

namespace fastpr {
namespace {

TEST(BufferPool, AcquireGivesRequestedSize) {
  auto pool = BufferPool::create();
  for (size_t len : {size_t{1}, size_t{100}, size_t{512}, size_t{513},
                     size_t{1} << 20}) {
    const auto buf = pool->acquire(len);
    EXPECT_EQ(buf.size(), len);
    EXPECT_NE(buf.data(), nullptr);
  }
  const auto empty = pool->acquire(0);
  EXPECT_EQ(empty.size(), 0u);
}

TEST(BufferPool, RecyclesAcrossAcquires) {
  auto pool = BufferPool::create();
  const uint8_t* first_storage = nullptr;
  {
    auto buf = pool->acquire(1000);
    first_storage = buf.data();
  }  // released back to the shelf
  auto again = pool->acquire(900);  // same capacity class (1024)
  EXPECT_EQ(again.data(), first_storage);
  const auto stats = pool->stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.recycled, 1);
}

TEST(BufferPool, DifferentClassesDoNotShareShelves) {
  auto pool = BufferPool::create();
  { auto small = pool->acquire(600); }
  auto large = pool->acquire(600 * 100);
  EXPECT_EQ(pool->stats().hits, 0);  // no cross-class reuse
}

TEST(BufferPool, SteadyStatePacketLoopNeverAllocates) {
  // The agent data-plane pattern: acquire, fill, drop, repeat. After the
  // first packet warms the shelf, every acquire must be a hit.
  auto pool = BufferPool::create();
  constexpr size_t kPacket = 256 * 1024;
  { auto warm = pool->acquire(kPacket); }
  const auto warm_stats = pool->stats();
  for (int i = 0; i < 1000; ++i) {
    auto p = pool->acquire(kPacket);
    p.data()[0] = static_cast<uint8_t>(i);
  }
  const auto stats = pool->stats();
  EXPECT_EQ(stats.misses, warm_stats.misses);  // zero new allocations
  EXPECT_EQ(stats.hits, warm_stats.hits + 1000);
}

TEST(BufferPool, ShelfCapBoundsCachedBuffers) {
  auto pool = BufferPool::create(/*max_shelf_buffers=*/2);
  {
    std::vector<PooledBuffer> live;
    for (int i = 0; i < 5; ++i) live.push_back(pool->acquire(1024));
  }  // 5 returns race for 2 shelf slots
  const auto stats = pool->stats();
  EXPECT_EQ(stats.recycled, 2);
  EXPECT_EQ(stats.dropped, 3);
}

TEST(BufferPool, HandleOutlivesPool) {
  PooledBuffer survivor;
  {
    auto pool = BufferPool::create();
    survivor = pool->acquire(4096);
    survivor.data()[0] = 0xAA;
  }  // pool object gone; the core lives on via the handle
  EXPECT_EQ(survivor.size(), 4096u);
  EXPECT_EQ(survivor[0], 0xAA);
  survivor.release();  // returns into the orphaned core; must not crash
}

TEST(BufferPool, MoveTransfersOwnership) {
  auto pool = BufferPool::create();
  auto a = pool->acquire(100);
  a.data()[0] = 7;
  PooledBuffer b = std::move(a);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): post-move spec
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b[0], 7);
  b = PooledBuffer();  // release via assignment
  EXPECT_GE(pool->stats().recycled, 1);
}

TEST(BufferPool, AssignAndEqualityBehaveLikeVector) {
  PooledBuffer buf;
  buf = {1, 2, 3};
  const std::vector<uint8_t> expect{1, 2, 3};
  EXPECT_EQ(buf, expect);
  EXPECT_EQ(expect, buf);
  buf.assign(expect.data(), expect.size());
  EXPECT_EQ(buf, expect);
  buf.assign(4, 9);
  EXPECT_EQ(buf, (std::vector<uint8_t>{9, 9, 9, 9}));
  const auto copy = buf.clone();
  EXPECT_EQ(copy, buf);
  buf.assign(size_t{0}, uint8_t{0});
  EXPECT_TRUE(buf.empty());
}

TEST(BufferPool, ResizeUninitializedReusesStorage) {
  PooledBuffer buf;
  buf.assign(300, 0x11);
  const uint8_t* storage = buf.data();
  buf.resize_uninitialized(200);  // fits: same storage, no pool traffic
  EXPECT_EQ(buf.data(), storage);
  EXPECT_EQ(buf.size(), 200u);
  buf.resize_uninitialized(1 << 16);  // outgrows the class: re-acquire
  EXPECT_EQ(buf.size(), size_t{1} << 16);
}

TEST(BufferPool, TrimFreesShelvedStorage) {
  auto pool = BufferPool::create();
  { auto buf = pool->acquire(2048); }
  pool->trim();
  auto buf = pool->acquire(2048);
  EXPECT_EQ(pool->stats().misses, 2);  // shelf was emptied
}

TEST(BufferPool, OversizeRequestTripsCheck) {
  auto pool = BufferPool::create();
  EXPECT_THROW(pool->acquire(size_t{1} << 29), CheckFailure);
}

TEST(BufferPoolStress, ConcurrentAcquireRelease) {
  auto pool = BufferPool::create();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < 500; ++i) {
        auto buf = pool->acquire(static_cast<size_t>(512 + t * 700));
        buf.data()[0] = static_cast<uint8_t>(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto stats = pool->stats();
  EXPECT_EQ(stats.hits + stats.misses, 4 * 500);
}

}  // namespace
}  // namespace fastpr
