// Bipartite matching: Hopcroft–Karp and the incremental matcher against
// the exhaustive oracle on random graphs; rollback semantics.
#include <gtest/gtest.h>

#include <deque>
#include <random>

#include "matching/brute_force.h"
#include "matching/hopcroft_karp.h"
#include "matching/incremental_matching.h"

namespace fastpr::matching {
namespace {

BipartiteGraph random_graph(int left, int right, double edge_prob,
                            std::mt19937& rng) {
  BipartiteGraph g;
  g.left_count = left;
  std::bernoulli_distribution edge(edge_prob);
  for (int r = 0; r < right; ++r) {
    std::vector<int> adj;
    for (int l = 0; l < left; ++l) {
      if (edge(rng)) adj.push_back(l);
    }
    g.add_right_vertex(std::move(adj));
  }
  return g;
}

struct GraphParam {
  int left, right;
  double density;
};

class MatchingOracleTest : public ::testing::TestWithParam<GraphParam> {};

TEST_P(MatchingOracleTest, HopcroftKarpMatchesBruteForce) {
  const auto p = GetParam();
  std::mt19937 rng(1000 + p.left * 31 + p.right);
  for (int trial = 0; trial < 60; ++trial) {
    const auto g = random_graph(p.left, p.right, p.density, rng);
    const auto hk = hopcroft_karp(g);
    EXPECT_TRUE(is_valid_matching(g, hk));
    EXPECT_EQ(hk.size, brute_force_max_matching(g));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatchingOracleTest,
    ::testing::Values(GraphParam{4, 4, 0.3}, GraphParam{6, 6, 0.5},
                      GraphParam{10, 8, 0.25}, GraphParam{5, 10, 0.4},
                      GraphParam{12, 6, 0.15}, GraphParam{8, 8, 0.9}));

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteGraph g;
  g.left_count = 5;
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 0);
  EXPECT_TRUE(m.is_perfect_on_right());
}

TEST(HopcroftKarp, IsolatedRightVertices) {
  BipartiteGraph g;
  g.left_count = 3;
  g.add_right_vertex({});
  g.add_right_vertex({0});
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 1);
  EXPECT_FALSE(m.is_perfect_on_right());
}

TEST(HopcroftKarp, PerfectMatchingOnCompleteGraph) {
  BipartiteGraph g;
  g.left_count = 6;
  for (int r = 0; r < 6; ++r) g.add_right_vertex({0, 1, 2, 3, 4, 5});
  const auto m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 6);
}

TEST(IncrementalMatcher, GroupAllOrNothing) {
  // Left {0,1}; first group of 2 takes both; a second group must fail
  // and leave the matcher untouched.
  IncrementalMatcher m(2);
  const std::vector<int> adj = {0, 1};
  EXPECT_TRUE(m.try_add_group(adj, 2));
  EXPECT_EQ(m.right_count(), 2);
  EXPECT_FALSE(m.try_add_group(adj, 1));
  EXPECT_EQ(m.right_count(), 2);
  // The committed vertices are still validly matched.
  EXPECT_NE(m.matched_left(0), m.matched_left(1));
}

TEST(IncrementalMatcher, RollbackRestoresSaturation) {
  // Group of 3 over left {0,1,2} with the third vertex unmatchable:
  // rollback must keep the earlier committed group saturated.
  IncrementalMatcher m(3);
  const std::vector<int> adj01 = {0, 1};
  const std::vector<int> adj2 = {2};
  EXPECT_TRUE(m.try_add_group(adj01, 2));  // occupies 0 and 1
  EXPECT_TRUE(m.try_add_group(adj2, 1));   // occupies 2
  const std::vector<int> adj_any = {0, 1, 2};
  EXPECT_FALSE(m.try_add_group(adj_any, 1));
  EXPECT_EQ(m.right_count(), 3);
  std::vector<bool> used(3, false);
  for (int r = 0; r < 3; ++r) {
    const int l = m.matched_left(r);
    ASSERT_GE(l, 0);
    ASSERT_LT(l, 3);
    EXPECT_FALSE(used[static_cast<size_t>(l)]);
    used[static_cast<size_t>(l)] = true;
  }
}

TEST(IncrementalMatcher, AugmentingPathReroutesExisting) {
  // Right A adj {0,1}; right B adj {0}. Insert A (may take 0), then B
  // must succeed by rerouting A to 1 — the augmenting-path property.
  IncrementalMatcher m(2);
  const std::vector<int> adj_a = {0, 1};
  const std::vector<int> adj_b = {0};
  ASSERT_TRUE(m.try_add_group(adj_a, 1));
  EXPECT_TRUE(m.try_add_group(adj_b, 1));
  EXPECT_EQ(m.matched_left(1), 0);
  EXPECT_EQ(m.matched_left(0), 1);
}

TEST(IncrementalMatcher, AgreesWithHopcroftKarpOnRandomGroups) {
  std::mt19937 rng(777);
  for (int trial = 0; trial < 100; ++trial) {
    const int left = 12;
    IncrementalMatcher inc(left);
    BipartiteGraph g;
    g.left_count = left;
    // deque: the matcher holds adjacency by pointer, so the
    // container must not relocate elements on growth.
    std::deque<std::vector<int>> kept_adjacency;

    // Insert random groups; mirror the accepted ones into a plain graph
    // and verify the incremental matcher saturates iff HK does.
    for (int step = 0; step < 8; ++step) {
      std::vector<int> adj;
      for (int l = 0; l < left; ++l) {
        if (rng() % 3 == 0) adj.push_back(l);
      }
      const int copies = 1 + static_cast<int>(rng() % 3);
      // Tentative graph with the group added.
      BipartiteGraph tentative = g;
      for (int c = 0; c < copies; ++c) tentative.add_right_vertex(adj);
      const bool hk_saturates =
          hopcroft_karp(tentative).size == tentative.right_count();

      kept_adjacency.push_back(adj);
      const bool accepted = inc.try_add_group(kept_adjacency.back(), copies);
      EXPECT_EQ(accepted, hk_saturates) << "trial=" << trial;
      if (accepted) g = std::move(tentative);
    }
  }
}

TEST(IncrementalMatcher, ResetClears) {
  IncrementalMatcher m(4);
  const std::vector<int> adj = {0, 1, 2, 3};
  EXPECT_TRUE(m.try_add_group(adj, 4));
  m.reset();
  EXPECT_EQ(m.right_count(), 0);
  EXPECT_TRUE(m.try_add_group(adj, 4));
}

}  // namespace
}  // namespace fastpr::matching
