// telemetry::FlowMonitor: window → EWMA folding math, straggler
// flagging against expected rates, and the fault-injection credit that
// keeps chaos-delayed links from reading as stragglers (DESIGN.md §5c).
//
// All timestamps are explicit µs values — no clocks, so every expected
// rate below is exact arithmetic.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/flow_monitor.h"
#include "telemetry/telemetry.h"
#include "util/units.h"

namespace fastpr {
namespace {

using telemetry::FlowMonitor;
using telemetry::LinkStats;

#if FASTPR_TELEMETRY_ENABLED

// Default options: 0.02 s windows, EWMA alpha 0.3.
constexpr int64_t kWindowUs = 20000;

TEST(FlowMonitor, FirstWindowSeedsEwmaThenFolds) {
  FlowMonitor fm;
  // Window 1: 40000 bytes over 20 ms = 2 MB/s, seeds the EWMA.
  fm.on_rx(0, 1, 20000, 0);
  fm.on_rx(0, 1, 20000, kWindowUs);
  auto snap = fm.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].src, 0);
  EXPECT_EQ(snap[0].dst, 1);
  EXPECT_EQ(snap[0].rx_bytes, 40000);
  EXPECT_DOUBLE_EQ(snap[0].ewma_bytes_per_sec, 2e6);

  // Window 2: 10000 bytes over 20 ms = 0.5 MB/s.
  // EWMA = 0.3 * 0.5e6 + 0.7 * 2e6 = 1.55e6.
  fm.on_rx(0, 1, 10000, 2 * kWindowUs);
  snap = fm.snapshot();
  EXPECT_DOUBLE_EQ(snap[0].ewma_bytes_per_sec, 1.55e6);
}

TEST(FlowMonitor, TxAndRxAreSeparateDirectedCounters) {
  FlowMonitor fm;
  fm.on_tx(0, 1, 100, 0);
  fm.on_tx(0, 1, 100, 0);
  fm.on_rx(1, 0, 77, 0);
  const auto snap = fm.snapshot();
  ASSERT_EQ(snap.size(), 2u);  // (0,1) and (1,0), sorted
  EXPECT_EQ(snap[0].src, 0);
  EXPECT_EQ(snap[0].tx_bytes, 200);
  EXPECT_EQ(snap[0].rx_bytes, 0);
  EXPECT_EQ(snap[1].src, 1);
  EXPECT_EQ(snap[1].rx_bytes, 77);
}

TEST(FlowMonitor, StragglerNeedsBothEstimateAndExpectation) {
  FlowMonitor fm;
  // 40000 bytes / 20 ms = 2 MB/s measured.
  fm.on_rx(0, 1, 40000, 0);
  fm.on_rx(0, 1, 0, kWindowUs);

  // No expectation: never a straggler.
  EXPECT_FALSE(fm.snapshot()[0].straggler);

  // Expected 3 MB/s: 2 MB/s is above the 0.5 factor — healthy.
  fm.set_expected_rate(0, 1, MBps(3));
  EXPECT_FALSE(fm.snapshot()[0].straggler);

  // Expected 5 MB/s: 2 < 0.5 * 5 — straggler.
  fm.set_expected_rate(0, 1, MBps(5));
  EXPECT_TRUE(fm.snapshot()[0].straggler);

  // A link with no estimate yet is not flagged even under the default
  // expectation.
  fm.set_default_expected_rate(MBps(5));
  fm.on_tx(2, 3, 10, 0);
  const auto snap = fm.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[1].expected_bytes_per_sec, MBps(5));
  EXPECT_FALSE(snap[1].straggler);
}

TEST(FlowMonitor, DefaultExpectedRateYieldsToSpecific) {
  FlowMonitor fm;
  fm.set_default_expected_rate(MBps(1));
  fm.set_expected_rate(0, 1, MBps(8));
  fm.on_tx(0, 1, 10, 0);
  fm.on_tx(4, 5, 10, 0);
  const auto snap = fm.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[0].expected_bytes_per_sec, MBps(8));
  EXPECT_DOUBLE_EQ(snap[1].expected_bytes_per_sec, MBps(1));
}

// The chaos-correctness property (DESIGN.md §5c): a link that is slow
// only because FaultyTransport slept on it keeps its injection-credited
// rate and is NOT a straggler.
TEST(FlowMonitor, InjectedDelayIsExcludedFromRate) {
  FlowMonitor fm;
  fm.set_expected_rate(1, 2, MBps(2));

  // 40000 bytes delivered across 100 ms of wall time, but 80 ms of it
  // was an injected fault-plan delay: active time is 20 ms, so the
  // credited rate is the full 2 MB/s the plan expects.
  fm.on_rx(1, 2, 20000, 0);
  fm.on_injected_delay(1, 2, 80000);
  fm.on_rx(1, 2, 20000, 100000);

  const auto snap = fm.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap[0].ewma_bytes_per_sec, 2e6);
  EXPECT_EQ(snap[0].injected_delay_us, 80000);
  EXPECT_FALSE(snap[0].straggler);

  // Control: same traffic with no injection credit reads 0.4 MB/s and
  // IS a straggler.
  FlowMonitor control;
  control.set_expected_rate(1, 2, MBps(2));
  control.on_rx(1, 2, 20000, 0);
  control.on_rx(1, 2, 20000, 100000);
  const auto csnap = control.snapshot();
  EXPECT_DOUBLE_EQ(csnap[0].ewma_bytes_per_sec, 4e5);
  EXPECT_TRUE(csnap[0].straggler);
}

TEST(FlowMonitor, IdleGapsAreExcludedFromActiveTime) {
  // A receive gap longer than idle_gap_seconds (default 0.1 s) means
  // the link had nothing scheduled — the round barrier, not slowness —
  // and is credited like injected delay. Two 40000-byte bursts, each
  // paced at 2 MB/s, separated by half a second of idle: the folded
  // rate must be the 4 MB/s of the pacing, not bytes / wall time.
  FlowMonitor fm;
  fm.set_expected_rate(1, 2, MBps(4));
  fm.on_rx(1, 2, 20000, 0);
  fm.on_rx(1, 2, 20000, 10000);
  fm.on_rx(1, 2, 20000, 510000);  // 500 ms gap: idle, not slowness
  fm.on_rx(1, 2, 20000, 520000);  // 20 ms active -> window folds
  const auto snap = fm.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_DOUBLE_EQ(snap[0].ewma_bytes_per_sec, 4e6);
  EXPECT_FALSE(snap[0].straggler);
  // The credit is window-local bookkeeping, not reported injection.
  EXPECT_EQ(snap[0].injected_delay_us, 0);

  // A gap at or below the threshold stays ACTIVE: genuine slow pacing
  // on a degraded link is still measured and still flags.
  FlowMonitor slow;
  slow.set_expected_rate(1, 2, MBps(4));
  slow.on_rx(1, 2, 20000, 0);
  slow.on_rx(1, 2, 20000, 100000);  // exactly 0.1 s: not idle
  const auto sslow = slow.snapshot();
  EXPECT_DOUBLE_EQ(sslow[0].ewma_bytes_per_sec, 4e5);  // 40000 B / 0.1 s
  EXPECT_TRUE(sslow[0].straggler);
}

TEST(FlowMonitor, ShortWindowStaysOpen) {
  FlowMonitor fm;
  fm.on_rx(0, 1, 1000, 0);
  fm.on_rx(0, 1, 1000, kWindowUs / 2);  // below the window threshold
  EXPECT_DOUBLE_EQ(fm.snapshot()[0].ewma_bytes_per_sec, 0);
  EXPECT_EQ(fm.snapshot()[0].rx_bytes, 2000);
}

TEST(FlowMonitor, ClearDropsAllLinks) {
  FlowMonitor fm;
  fm.on_tx(0, 1, 10, 0);
  fm.on_rx(0, 1, 10, 0);
  EXPECT_EQ(fm.snapshot().size(), 1u);
  fm.clear();
  EXPECT_TRUE(fm.snapshot().empty());
}

TEST(FlowMonitor, ConcurrentReportersDoNotLoseBytes) {
  FlowMonitor fm;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fm, t] {
      for (int i = 0; i < kPerThread; ++i) {
        fm.on_tx(t, 99, 3, i);
        fm.on_rx(t, 99, 3, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = fm.snapshot();
  ASSERT_EQ(snap.size(), static_cast<size_t>(kThreads));
  for (const auto& l : snap) {
    EXPECT_EQ(l.tx_bytes, 3 * kPerThread);
    EXPECT_EQ(l.rx_bytes, 3 * kPerThread);
  }
}

#else  // !FASTPR_TELEMETRY_ENABLED

TEST(FlowMonitor, DisabledBuildIsInertNoOp) {
  FlowMonitor fm;
  fm.on_tx(0, 1, 100, 0);
  fm.on_rx(0, 1, 100, 0);
  fm.on_injected_delay(0, 1, 50);
  fm.set_expected_rate(0, 1, MBps(1));
  fm.set_default_expected_rate(MBps(1));
  EXPECT_TRUE(fm.snapshot().empty());
  fm.clear();
}

#endif  // FASTPR_TELEMETRY_ENABLED

}  // namespace
}  // namespace fastpr
