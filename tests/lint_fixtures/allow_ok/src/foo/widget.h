// Golden good snippet: a blocking call under a held lock that carries a
// reviewed fastpr-lint: allow(lock-held-blocking) marker, plus properly
// ranked mutexes acquired in ascending order. fastpr_analyze must exit 0.
#pragma once

#include "util/lock_order.h"
#include "util/mutex.h"

namespace fixture {

class Widget {
 public:
  void push();

 private:
  fastpr::Mutex low_{fastpr::lock_order::kLow};
  fastpr::Mutex high_{fastpr::lock_order::kHigh};
};

}  // namespace fixture
