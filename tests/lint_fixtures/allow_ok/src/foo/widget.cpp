#include "foo/widget.h"

namespace fixture {

void Widget::push() {
  fastpr::MutexLock a(low_);
  fastpr::MutexLock b(high_);  // ascending rank: fine
  // The send must happen under high_ so frames stay contiguous on the
  // wire; reviewed and accepted.
  // fastpr-lint: allow(lock-held-blocking)
  transport_.send(
      make_item(1),
      make_item(2));
}

}  // namespace fixture
