// Golden bad snippet: two unranked (reviewed) mutexes acquired in
// opposite orders by two functions — a classic ABBA deadlock.
// fastpr_analyze must flag the cycle with [lock-order].
#pragma once

#include "util/mutex.h"

namespace fixture {

class Widget {
 public:
  void ab();
  void ba();

 private:
  fastpr::Mutex mu_a_;  // fastpr-lint: allow(lock-rank)
  fastpr::Mutex mu_b_;  // fastpr-lint: allow(lock-rank)
};

}  // namespace fixture
