#include "foo/widget.h"

namespace fixture {

void Widget::ab() {
  fastpr::MutexLock a(mu_a_);
  fastpr::MutexLock b(mu_b_);
}

void Widget::ba() {
  fastpr::MutexLock b(mu_b_);
  fastpr::MutexLock a(mu_a_);  // closes the ab/ba cycle: must flag
}

}  // namespace fixture
