// Golden bad snippet for the `trace-context` lint rule: agent code
// minting its own span ids instead of propagating the sender's
// TraceContext. Both lines below must be flagged.

#include <cstdint>

namespace fastpr::telemetry {
uint64_t next_span_id();
}

namespace fastpr::agent {

struct FakeEvent {
  uint64_t span_id;
};

void forge_span() {
  FakeEvent ev;
  ev.span_id = 42;
  ev.span_id = fastpr::telemetry::next_span_id();
}

}  // namespace fastpr::agent
