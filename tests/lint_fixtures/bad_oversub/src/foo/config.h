// Golden bad snippet: a raw oversubscription literal at a
// configuration boundary must trip the `oversub` rule (the factor has
// to flow through net::Oversub() so f >= 1 is validated).
#pragma once

namespace fixture {

struct FabricConfig {
  double oversubscription = 4.0;  // fastpr_lint must flag this line
};

}  // namespace fixture
