// Mini hierarchy for the analyzer fixtures.
#pragma once

namespace fastpr::lock_order {

struct Rank {
  int order;
  const char* name;
};

inline constexpr Rank kLow{10, "fixture.low"};
inline constexpr Rank kHigh{20, "fixture.high"};

}  // namespace fastpr::lock_order
