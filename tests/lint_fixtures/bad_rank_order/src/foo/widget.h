// Golden bad snippet: acquires against the declared rank order.
// fastpr_analyze must flag widget.cpp with [lock-order].
#pragma once

#include "util/lock_order.h"
#include "util/mutex.h"

namespace fixture {

class Widget {
 public:
  void poke();

 private:
  fastpr::Mutex low_{fastpr::lock_order::kLow};
  fastpr::Mutex high_{fastpr::lock_order::kHigh};
};

}  // namespace fixture
