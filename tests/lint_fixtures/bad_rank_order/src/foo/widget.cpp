#include "foo/widget.h"

namespace fixture {

void Widget::poke() {
  fastpr::MutexLock outer(high_);
  fastpr::MutexLock inner(low_);  // descends the hierarchy: must flag
}

}  // namespace fixture
