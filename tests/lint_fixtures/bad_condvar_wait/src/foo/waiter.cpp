#include "foo/waiter.h"

namespace fixture {

void Waiter::block_until_ready() {
  fastpr::MutexLock lock(mutex_);
  while (!ready_) cv_.wait(mutex_);  // naked wait: fastpr_lint must flag
}

}  // namespace fixture
