#include "foo/widget.h"

namespace fixture {

void Widget::push() {
  fastpr::MutexLock lock(mu_);
  transport_.send(make_item());  // blocks on NIC shaping under mu_
}

}  // namespace fixture
