// Golden bad snippet: blocking transport send while a lock is held.
// fastpr_analyze must flag widget.cpp with [lock-held-blocking].
#pragma once

#include "util/lock_order.h"
#include "util/mutex.h"

namespace fixture {

class Widget {
 public:
  void push();

 private:
  fastpr::Mutex mu_{fastpr::lock_order::kLow};
};

}  // namespace fixture
