// Golden bad snippet: a Mutex in src/ declared without a
// util/lock_order.h rank. fastpr_analyze must flag it with [lock-rank].
#pragma once

#include "util/mutex.h"

namespace fixture {

class Widget {
 public:
  void poke();

 private:
  fastpr::Mutex mu_;  // unranked: must flag
};

}  // namespace fixture
