#include "net/message.h"

namespace fixture {

void dispatch(fastpr::net::MessageType type) {
  switch (type) {
    case fastpr::net::MessageType::kAlpha:
      handle_alpha();
      break;
    case fastpr::net::MessageType::kBeta:
      handle_beta();
      break;
    case fastpr::net::MessageType::kEpsilon:
      handle_epsilon();
      break;
    default:
      break;
  }
}

}  // namespace fixture
