// Golden bad snippets for [msgtype-exhaustive]: kGamma is wired into
// neither the dispatch switch nor serialization, and kDelta — modeled
// on a streaming type like kChainPacket — made it into the codec but
// was never dispatched. fastpr_analyze must flag both: serializing a
// type no agent handles is exactly the silent-drop bug the rule exists
// to prevent.
#pragma once

#include <cstdint>

namespace fastpr::net {

enum class MessageType : uint8_t {
  kAlpha = 1,
  kBeta = 2,
  kGamma = 3,
  kDelta = 4,
};

}  // namespace fastpr::net
