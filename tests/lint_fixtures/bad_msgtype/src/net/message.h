// Golden bad snippet: a MessageType enumerator (kGamma) that is wired
// into neither the dispatch switch nor serialization. fastpr_analyze
// must flag it with [msgtype-exhaustive].
#pragma once

#include <cstdint>

namespace fastpr::net {

enum class MessageType : uint8_t {
  kAlpha = 1,
  kBeta = 2,
  kGamma = 3,
};

}  // namespace fastpr::net
