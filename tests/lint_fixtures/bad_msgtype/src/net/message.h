// Golden bad snippets for [msgtype-exhaustive]: kGamma is wired into
// neither the dispatch switch nor serialization; kDelta — modeled on a
// streaming type like kChainPacket — made it into the codec but was
// never dispatched; kEpsilon — modeled on a control type like
// kLeaseGrant/kPressureReport — is dispatched but missing from the
// codec, so the transport would reject it as an invalid frame.
// fastpr_analyze must flag all three: each direction is a silent-drop
// bug the rule exists to prevent.
#pragma once

#include <cstdint>

namespace fastpr::net {

enum class MessageType : uint8_t {
  kAlpha = 1,
  kBeta = 2,
  kGamma = 3,
  kDelta = 4,
  kEpsilon = 5,
};

}  // namespace fastpr::net
