#include "net/message.h"

namespace fastpr::net {

bool valid_message_type(uint8_t raw) {
  switch (static_cast<MessageType>(raw)) {
    case MessageType::kAlpha:
    case MessageType::kBeta:
    case MessageType::kDelta:
      return true;
    default:
      return false;
  }
}

}  // namespace fastpr::net
