// BandwidthReplanTrigger (DESIGN.md §11): the pure control logic behind
// mid-repair bandwidth replanning. Exercises every edge of the state
// machine with explicit epochs — hysteresis (consecutive-breach floor,
// healthy-round streak reset), stale-epoch rejection, cooldown and
// re-arm, the replan cap, permanent disable, and constructor
// validation. The coordinator-integration path (FlowMonitor drift →
// plan splice) is covered by test_chaos and bench_topology; this file
// pins the trigger semantics those runs rely on.
#include <gtest/gtest.h>

#include "core/replan_trigger.h"
#include "util/check.h"

namespace fastpr::core {
namespace {

BandwidthReplanOptions armed() {
  BandwidthReplanOptions options;
  options.enabled = true;
  return options;  // degrade 0.5, min_breach 2, rearm 0.8, max 1
}

TEST(BandwidthReplanTrigger, DisabledTriggerNeverFiresOrCounts) {
  BandwidthReplanTrigger trigger{BandwidthReplanOptions{}};
  EXPECT_FALSE(trigger.enabled());
  for (int64_t epoch = 1; epoch <= 10; ++epoch) {
    EXPECT_FALSE(trigger.feed(epoch, 0.0));
  }
  const auto stats = trigger.stats();
  EXPECT_EQ(stats.samples, 0);
  EXPECT_EQ(stats.breaches, 0);
  EXPECT_EQ(stats.replans, 0);
}

TEST(BandwidthReplanTrigger, FiresOnlyAfterMinBreachRounds) {
  auto options = armed();
  options.min_breach_rounds = 3;
  BandwidthReplanTrigger trigger{options};
  EXPECT_TRUE(trigger.enabled());
  EXPECT_FALSE(trigger.feed(1, 0.3));
  EXPECT_FALSE(trigger.feed(2, 0.3));
  EXPECT_TRUE(trigger.feed(3, 0.3));
  const auto stats = trigger.stats();
  EXPECT_EQ(stats.samples, 3);
  EXPECT_EQ(stats.breaches, 3);
  EXPECT_EQ(stats.replans, 1);
}

TEST(BandwidthReplanTrigger, HealthyRoundResetsBreachStreak) {
  // Hysteresis: breaches must be CONSECUTIVE. A single recovered round
  // between two breaches keeps a min_breach_rounds=2 trigger silent.
  BandwidthReplanTrigger trigger{armed()};
  EXPECT_FALSE(trigger.feed(1, 0.3));   // breach 1
  EXPECT_FALSE(trigger.feed(2, 0.9));   // healthy — streak resets
  EXPECT_FALSE(trigger.feed(3, 0.3));   // breach 1 again
  EXPECT_TRUE(trigger.feed(4, 0.3));    // breach 2 — fires
  const auto stats = trigger.stats();
  EXPECT_EQ(stats.samples, 4);
  EXPECT_EQ(stats.breaches, 3);
  EXPECT_EQ(stats.replans, 1);
}

TEST(BandwidthReplanTrigger, BoundaryRatioIsNotABreach) {
  // ratio == degrade_ratio counts as healthy (feed breaches strictly
  // below the threshold), so a link running exactly at plan-degraded
  // pace never thrashes the plan.
  auto options = armed();
  options.min_breach_rounds = 1;
  BandwidthReplanTrigger trigger{options};
  EXPECT_FALSE(trigger.feed(1, options.degrade_ratio));
  EXPECT_EQ(trigger.stats().breaches, 0);
}

TEST(BandwidthReplanTrigger, StaleEpochsAreDroppedWithoutCounting) {
  // After a replan splices the round list, an in-flight end-of-round
  // sample for an already-seen epoch must not advance the streak.
  BandwidthReplanTrigger trigger{armed()};
  EXPECT_FALSE(trigger.feed(5, 0.3));  // breach 1
  EXPECT_FALSE(trigger.feed(5, 0.3));  // same epoch: dropped
  EXPECT_FALSE(trigger.feed(4, 0.3));  // older epoch: dropped
  EXPECT_EQ(trigger.stats().samples, 1);
  EXPECT_TRUE(trigger.feed(6, 0.3));   // breach 2 — fires
  const auto stats = trigger.stats();
  EXPECT_EQ(stats.samples, 2);
  EXPECT_EQ(stats.breaches, 2);
}

TEST(BandwidthReplanTrigger, CooldownHoldsUntilRearmRatio) {
  auto options = armed();
  options.min_breach_rounds = 1;
  options.max_replans = 2;
  BandwidthReplanTrigger trigger{options};
  EXPECT_TRUE(trigger.feed(1, 0.3));   // fires, enters cooldown
  EXPECT_FALSE(trigger.feed(2, 0.3));  // cooldown swallows the breach
  EXPECT_FALSE(trigger.feed(3, 0.6));  // above degrade, below rearm: held
  EXPECT_FALSE(trigger.feed(4, 0.85)); // >= rearm 0.8 — re-arms
  EXPECT_TRUE(trigger.feed(5, 0.3));   // armed again, fires
  const auto stats = trigger.stats();
  EXPECT_EQ(stats.replans, 2);
  // Cooldown samples are accepted (fresh epochs) but not breaches.
  EXPECT_EQ(stats.samples, 5);
  EXPECT_EQ(stats.breaches, 2);
}

TEST(BandwidthReplanTrigger, MaxReplansCapsFiring) {
  auto options = armed();
  options.min_breach_rounds = 1;
  BandwidthReplanTrigger trigger{options};  // max_replans = 1
  EXPECT_TRUE(trigger.feed(1, 0.3));
  EXPECT_FALSE(trigger.feed(2, 0.9));  // re-arms
  EXPECT_FALSE(trigger.feed(3, 0.3));  // breach, but replans exhausted
  EXPECT_FALSE(trigger.feed(4, 0.3));
  const auto stats = trigger.stats();
  EXPECT_EQ(stats.replans, 1);
  EXPECT_EQ(stats.breaches, 3);
}

TEST(BandwidthReplanTrigger, MaxReplansZeroNeverFires) {
  auto options = armed();
  options.min_breach_rounds = 1;
  options.max_replans = 0;
  BandwidthReplanTrigger trigger{options};
  for (int64_t epoch = 1; epoch <= 5; ++epoch) {
    EXPECT_FALSE(trigger.feed(epoch, 0.1));
  }
  EXPECT_EQ(trigger.stats().replans, 0);
  EXPECT_EQ(trigger.stats().breaches, 5);
}

TEST(BandwidthReplanTrigger, DisableIsPermanent) {
  // The degraded-to-reactive path disarms the trigger for good: the
  // plan it was monitoring no longer exists.
  auto options = armed();
  options.min_breach_rounds = 1;
  BandwidthReplanTrigger trigger{options};
  trigger.disable();
  EXPECT_FALSE(trigger.enabled());
  EXPECT_FALSE(trigger.feed(1, 0.0));
  EXPECT_EQ(trigger.stats().samples, 0);
}

TEST(BandwidthReplanTrigger, ConstructorRejectsDegenerateOptions) {
  auto rearm_below_degrade = armed();
  rearm_below_degrade.rearm_ratio = rearm_below_degrade.degrade_ratio;
  EXPECT_THROW(BandwidthReplanTrigger{rearm_below_degrade}, CheckFailure);

  auto zero_breach = armed();
  zero_breach.min_breach_rounds = 0;
  EXPECT_THROW(BandwidthReplanTrigger{zero_breach}, CheckFailure);

  auto degrade_at_one = armed();
  degrade_at_one.degrade_ratio = 1.0;
  degrade_at_one.rearm_ratio = 1.5;
  EXPECT_THROW(BandwidthReplanTrigger{degrade_at_one}, CheckFailure);

  auto negative_cap = armed();
  negative_cap.max_replans = -1;
  EXPECT_THROW(BandwidthReplanTrigger{negative_cap}, CheckFailure);
}

TEST(BandwidthReplanTrigger, NegativeRatioIsRejected) {
  BandwidthReplanTrigger trigger{armed()};
  EXPECT_THROW(trigger.feed(1, -0.1), CheckFailure);
}

}  // namespace
}  // namespace fastpr::core
