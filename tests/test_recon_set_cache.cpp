// §IV-D precompute cache: correctness, staleness, planner integration.
#include "core/recon_set_cache.h"

#include <gtest/gtest.h>

#include "core/fastpr.h"
#include "core/repair_plan.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/units.h"

namespace fastpr::core {
namespace {

using cluster::ClusterState;
using cluster::NodeId;
using cluster::StripeLayout;

struct World {
  StripeLayout layout;
  ClusterState state;
};

World make_world(uint64_t seed) {
  Rng rng(seed);
  return World{StripeLayout::random(30, 6, 200, rng),
               ClusterState(30, 2,
                            cluster::BandwidthProfile{MBps(100), Gbps(1)})};
}

ReconSetCache::Options cache_options() {
  ReconSetCache::Options opts;
  opts.k_repair = 4;
  return opts;
}

TEST(ReconSetCache, PrecomputedSetsCoverNode) {
  auto w = make_world(1);
  ReconSetCache cache(cache_options());
  cache.precompute(w.layout, w.state, 5);
  const auto sets = cache.lookup(w.layout, 5);
  ASSERT_TRUE(sets.has_value());
  size_t covered = 0;
  for (const auto& set : *sets) covered += set.size();
  EXPECT_EQ(covered, w.layout.chunks_on(5).size());
}

TEST(ReconSetCache, MissReturnsNullopt) {
  auto w = make_world(2);
  ReconSetCache cache(cache_options());
  EXPECT_FALSE(cache.lookup(w.layout, 3).has_value());
}

TEST(ReconSetCache, LayoutMutationInvalidates) {
  auto w = make_world(3);
  ReconSetCache cache(cache_options());
  cache.precompute_all(w.layout, w.state);
  EXPECT_EQ(cache.size(), 30u);
  ASSERT_TRUE(cache.lookup(w.layout, 0).has_value());

  // Move any chunk: every entry is stale.
  const auto chunks = w.layout.chunks_on(0);
  ASSERT_FALSE(chunks.empty());
  for (NodeId dst = 0; dst < 30; ++dst) {
    if (dst != 0 && !w.layout.stripe_uses_node(chunks[0].stripe, dst)) {
      w.layout.move_chunk(chunks[0], dst);
      break;
    }
  }
  EXPECT_FALSE(cache.lookup(w.layout, 0).has_value());
  cache.evict_stale(w.layout);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ReconSetCache, PlannerConsumesPrecomputedSets) {
  auto w = make_world(4);
  // Precompute for node 7 BEFORE it is flagged (the whole point).
  ReconSetCache cache(cache_options());
  cache.precompute(w.layout, w.state, 7);

  w.state.set_health(7, cluster::NodeHealth::kSoonToFail);
  PlannerOptions popts;
  popts.k_repair = 4;
  popts.chunk_bytes = static_cast<double>(MB(64));
  FastPrPlanner planner(w.layout, w.state, popts);
  auto sets = cache.lookup(w.layout, 7);
  ASSERT_TRUE(sets.has_value());
  planner.use_reconstruction_sets(*sets);

  const auto plan = planner.plan_fastpr();
  validate_plan(plan, w.layout, w.state, 4);
  // Algorithm 1 did not run inside the planner.
  EXPECT_EQ(planner.recon_stats().match_calls, 0);
}

TEST(ReconSetCache, PlannerRejectsBadPrecomputedSets) {
  auto w = make_world(5);
  w.state.set_health(2, cluster::NodeHealth::kSoonToFail);
  PlannerOptions popts;
  popts.k_repair = 4;
  popts.chunk_bytes = static_cast<double>(MB(64));
  FastPrPlanner planner(w.layout, w.state, popts);

  // Wrong node's chunks → foreign-chunk rejection.
  std::vector<std::vector<cluster::ChunkRef>> wrong = {
      w.layout.chunks_on(3)};
  EXPECT_THROW(planner.use_reconstruction_sets(wrong), CheckFailure);

  // Partial cover → rejection.
  auto partial = w.layout.chunks_on(2);
  ASSERT_GT(partial.size(), 1u);
  partial.pop_back();
  EXPECT_THROW(planner.use_reconstruction_sets({partial}), CheckFailure);
}

TEST(ReconSetCache, CachedEqualsFreshComputation) {
  // Determinism: the cache stores exactly what a fresh Algorithm 1 run
  // would produce for the same layout.
  auto w = make_world(6);
  ReconSetCache cache(cache_options());
  cache.precompute(w.layout, w.state, 9);
  std::vector<NodeId> sources;
  for (NodeId n : w.state.healthy_storage_nodes()) {
    if (n != 9) sources.push_back(n);
  }
  const auto fresh =
      find_reconstruction_sets(w.layout, 9, sources, 4, ReconSetOptions{});
  EXPECT_EQ(*cache.lookup(w.layout, 9), fresh);
}

}  // namespace
}  // namespace fastpr::core
