// Lifetime simulation: accounting sanity and the headline property —
// accurate prediction slashes the window of vulnerability.
#include "lifetime/lifetime_sim.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/units.h"

namespace fastpr::lifetime {
namespace {

LifetimeConfig base_config() {
  LifetimeConfig cfg;
  cfg.num_nodes = 40;
  cfg.n = 9;
  cfg.k = 6;
  cfg.num_stripes = 200;
  cfg.chunk_bytes = static_cast<double>(MB(64));
  cfg.disk_bw = MBps(100);
  cfg.net_bw = Gbps(1);
  cfg.sim_days = 365;
  cfg.node_mtbf_days = 600;  // ~24 failures/year on 40 nodes
  cfg.seed = 11;
  return cfg;
}

TEST(LifetimeSim, ReactiveBaselineAccounting) {
  auto cfg = base_config();
  cfg.predictive_enabled = false;
  const auto report = simulate_lifetime(cfg);
  EXPECT_GT(report.failures, 5);
  EXPECT_EQ(report.predicted, 0);
  EXPECT_EQ(report.false_alarms, 0);
  EXPECT_EQ(report.completed_in_time, 0);
  // Every failure has a full reactive window.
  EXPECT_GT(report.vulnerability_seconds, 0);
  EXPECT_EQ(report.repair_seconds.count(),
            static_cast<size_t>(report.failures));
}

TEST(LifetimeSim, PerfectPredictionEliminatesVulnerability) {
  auto cfg = base_config();
  cfg.prediction_recall = 1.0;
  cfg.false_alarms_per_year = 0;
  cfg.lead_days_min = 5.0;  // days of lead vs minutes of repair
  cfg.lead_days_max = 10.0;
  const auto report = simulate_lifetime(cfg);
  EXPECT_EQ(report.predicted, report.failures);
  EXPECT_EQ(report.completed_in_time, report.failures);
  EXPECT_DOUBLE_EQ(report.vulnerability_seconds, 0.0);
  EXPECT_EQ(report.data_loss_stripes, 0);
}

TEST(LifetimeSim, RecallMonotonicallyReducesVulnerability) {
  auto cfg = base_config();
  cfg.false_alarms_per_year = 0;
  double prev = -1;
  for (double recall : {0.0, 0.5, 1.0}) {
    cfg.prediction_recall = recall;
    const auto report = simulate_lifetime(cfg);
    if (prev >= 0) {
      EXPECT_LE(report.vulnerability_seconds, prev * 1.001)
          << "recall " << recall;
    }
    prev = report.vulnerability_seconds;
  }
  EXPECT_DOUBLE_EQ(prev, 0.0);
}

TEST(LifetimeSim, FalseAlarmsAreRepairedButNotFailures) {
  auto cfg = base_config();
  cfg.node_mtbf_days = 1e9;  // no real failures
  cfg.false_alarms_per_year = 24;
  const auto report = simulate_lifetime(cfg);
  EXPECT_EQ(report.failures, 0);
  EXPECT_GT(report.false_alarms, 5);
  EXPECT_GT(report.repair_traffic_chunks, 0);
  EXPECT_DOUBLE_EQ(report.vulnerability_seconds, 0.0);
}

TEST(LifetimeSim, PredictiveTrafficIsLowerThanReactive) {
  // FastPR migrates part of every repair → less traffic than the pure
  // reconstruction of the reactive baseline (for comparable failures).
  auto cfg = base_config();
  cfg.false_alarms_per_year = 0;
  cfg.prediction_recall = 1.0;
  const auto predictive = simulate_lifetime(cfg);
  cfg.predictive_enabled = false;
  const auto reactive = simulate_lifetime(cfg);
  ASSERT_GT(predictive.failures, 0);
  ASSERT_GT(reactive.failures, 0);
  const double per_failure_pred =
      static_cast<double>(predictive.repair_traffic_chunks) /
      predictive.failures;
  const double per_failure_react =
      static_cast<double>(reactive.repair_traffic_chunks) /
      reactive.failures;
  EXPECT_LT(per_failure_pred, per_failure_react);
}

TEST(LifetimeSim, DeterministicPerSeed) {
  const auto a = simulate_lifetime(base_config());
  const auto b = simulate_lifetime(base_config());
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.vulnerability_seconds, b.vulnerability_seconds);
  EXPECT_EQ(a.repair_traffic_chunks, b.repair_traffic_chunks);
}

TEST(LifetimeSim, RejectsHotStandby) {
  auto cfg = base_config();
  cfg.scenario = core::Scenario::kHotStandby;
  EXPECT_THROW(simulate_lifetime(cfg), CheckFailure);
}

}  // namespace
}  // namespace fastpr::lifetime
