// Multi-STF batch planner (DESIGN.md §8): degenerate-batch equivalence
// (a batch of one is byte-identical to the single-STF pipeline), the
// sim-vs-cost-model differential sweep (every simulated round must hit
// round_time_multi exactly under the paper timing model), the forced-
// migration path, and a real-testbed batch execution whose round count
// matches the Algorithm-2 plan.
//
// The differential sweep's seed window widens via
// FASTPR_PROPERTY_SEED_BASE/_COUNT (same knobs as test_properties, so
// nightly CI randomizes both together).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "agent/testbed.h"
#include "cluster/cluster_state.h"
#include "cluster/stripe_layout.h"
#include "core/fastpr.h"
#include "core/multi_stf.h"
#include "core/repair_plan.h"
#include "ec/rs_code.h"
#include "sim/simulator.h"
#include "sim/strategies.h"
#include "util/rng.h"
#include "util/units.h"

namespace fastpr {
namespace {

using cluster::ChunkRef;
using cluster::NodeId;

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

uint64_t seed_base() { return env_u64("FASTPR_PROPERTY_SEED_BASE", 1); }
int seed_count() {
  return static_cast<int>(env_u64("FASTPR_PROPERTY_SEED_COUNT", 4));
}

NodeId most_loaded(const cluster::StripeLayout& layout) {
  NodeId best = 0;
  for (NodeId node = 1; node < layout.num_nodes(); ++node) {
    if (layout.load(node) > layout.load(best)) best = node;
  }
  return best;
}

/// Field-by-field plan equality — "byte-identical" in DESIGN.md §9.7.
void expect_plans_identical(const core::RepairPlan& a,
                            const core::RepairPlan& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  EXPECT_EQ(a.stf_node, b.stf_node);
  for (size_t r = 0; r < a.rounds.size(); ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    const auto& ra = a.rounds[r];
    const auto& rb = b.rounds[r];
    ASSERT_EQ(ra.migrations.size(), rb.migrations.size());
    for (size_t i = 0; i < ra.migrations.size(); ++i) {
      EXPECT_EQ(ra.migrations[i].chunk, rb.migrations[i].chunk);
      EXPECT_EQ(ra.migrations[i].src, rb.migrations[i].src);
      EXPECT_EQ(ra.migrations[i].dst, rb.migrations[i].dst);
    }
    ASSERT_EQ(ra.reconstructions.size(), rb.reconstructions.size());
    for (size_t i = 0; i < ra.reconstructions.size(); ++i) {
      const auto& task_a = ra.reconstructions[i];
      const auto& task_b = rb.reconstructions[i];
      EXPECT_EQ(task_a.chunk, task_b.chunk);
      EXPECT_EQ(task_a.dst, task_b.dst);
      ASSERT_EQ(task_a.sources.size(), task_b.sources.size());
      for (size_t s = 0; s < task_a.sources.size(); ++s) {
        EXPECT_EQ(task_a.sources[s].node, task_b.sources[s].node);
        EXPECT_EQ(task_a.sources[s].chunk, task_b.sources[s].chunk);
      }
    }
  }
}

TEST(MultiStfPlanner, BatchOfOneIsByteIdenticalToSingleStf) {
  for (auto scenario :
       {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
    SCOPED_TRACE(core::to_string(scenario));
    Rng rng(7);
    const auto layout = cluster::StripeLayout::random(
        /*num_nodes=*/20, /*chunks_per_stripe=*/9, /*num_stripes=*/100,
        rng);
    cluster::ClusterState state(
        20, /*num_hot_standby=*/3,
        cluster::BandwidthProfile{MBps(100), Gbps(1)});
    state.set_health(most_loaded(layout), cluster::NodeHealth::kSoonToFail);

    core::PlannerOptions options;
    options.scenario = scenario;
    options.k_repair = 6;
    options.chunk_bytes = static_cast<double>(MB(64));
    core::FastPrPlanner single(layout, state, options);
    core::MultiStfPlanner multi(layout, state, options);
    ASSERT_EQ(multi.batch().size(), 1u);

    const auto reference = single.plan_fastpr();
    // Joint AND sequential collapse onto the single-STF plan at B = 1.
    expect_plans_identical(reference, multi.plan_fastpr());
    expect_plans_identical(reference, multi.plan_sequential());

    // The batch cost model degenerates to Equations 1–6 exactly.
    const auto cm_single = single.cost_model();
    const auto cm_multi = multi.cost_model();
    EXPECT_DOUBLE_EQ(cm_single.tm(), cm_multi.tm());
    EXPECT_DOUBLE_EQ(cm_single.tr(3.0), cm_multi.tr(3.0));
    EXPECT_DOUBLE_EQ(cm_single.max_parallel_groups(),
                     cm_multi.max_parallel_groups());
    EXPECT_DOUBLE_EQ(cm_single.predictive_time(), cm_multi.predictive_time());
    EXPECT_DOUBLE_EQ(cm_single.reactive_time(), cm_multi.reactive_time());
    EXPECT_DOUBLE_EQ(cm_single.migration_only_time(),
                     cm_multi.migration_only_time());
  }
}

TEST(MultiStfPlanner, RoundTimeMultiDegeneratesToRoundTime) {
  core::ModelParams params;
  params.num_nodes = 20;
  params.stf_chunks = 100;
  params.chunk_bytes = static_cast<double>(MB(64));
  params.disk_bw = MBps(100);
  params.net_bw = Gbps(1);
  params.k_repair = 6;
  const core::CostModel model(params);
  EXPECT_DOUBLE_EQ(model.round_time_multi(3, {2}), model.round_time(3, 2));
  EXPECT_DOUBLE_EQ(model.round_time_multi(0, {5}), model.round_time(0, 5));
  // B independent disks: the round is paced by the busiest stream.
  EXPECT_DOUBLE_EQ(model.round_time_multi(2, {1, 4, 2}),
                   model.round_time(2, 4));
  EXPECT_DOUBLE_EQ(model.round_time_multi(2, {}), model.round_time(2, 0));
}

TEST(MultiStfPlanner, BatchStarvedStripesFallBackToMigration) {
  // Stripe 0 lives on {0..5}; flagging {0,1,2} leaves it 3 < k' = 4
  // healthy helpers, so its three batch chunks cannot be reconstructed
  // and MUST ride the forced-migration path off their live disks.
  cluster::StripeLayout layout(/*num_nodes=*/12, /*chunks_per_stripe=*/6);
  layout.add_stripe({0, 1, 2, 3, 4, 5});
  layout.add_stripe({0, 6, 7, 8, 9, 10});
  layout.add_stripe({1, 6, 7, 8, 9, 11});
  layout.add_stripe({2, 5, 7, 8, 10, 11});
  layout.add_stripe({3, 4, 6, 8, 9, 10});
  cluster::ClusterState state(
      12, /*num_hot_standby=*/3,
      cluster::BandwidthProfile{MBps(100), Gbps(1)});
  for (NodeId member : {0, 1, 2}) {
    state.set_health(member, cluster::NodeHealth::kSoonToFail);
  }
  core::PlannerOptions options;
  options.k_repair = 4;
  options.chunk_bytes = static_cast<double>(MB(4));
  core::MultiStfPlanner planner(layout, state, options);

  const auto plan = planner.plan_fastpr();
  core::validate_plan(plan, layout, state, options.k_repair);
  int stripe0_migrations = 0;
  int covered = 0;
  for (const auto& round : plan.rounds) {
    for (const auto& task : round.migrations) {
      stripe0_migrations += task.chunk.stripe == 0 ? 1 : 0;
      ++covered;
    }
    for (const auto& task : round.reconstructions) {
      EXPECT_NE(task.chunk.stripe, 0)
          << "stripe 0 lacks k' helpers; it cannot be reconstructed";
      ++covered;
    }
  }
  EXPECT_EQ(stripe0_migrations, 3);
  // Coverage: chunks on nodes 0, 1 and 2 across the five stripes.
  EXPECT_EQ(covered,
            layout.load(0) + layout.load(1) + layout.load(2));
}

TEST(MultiStfDifferential, SimRoundsMatchCostModelExactly) {
  // Under the paper timing model the simulator's per-round times are the
  // §III closed forms — so each must equal round_time_multi(cr, per-src
  // migration counts) to float precision, any plan, any batch size.
  for (int s = 0; s < seed_count(); ++s) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(s);
    for (const auto& code : {std::pair<int, int>{6, 4},
                             std::pair<int, int>{9, 6}}) {
      for (int batch = 1; batch <= 3; ++batch) {
        for (auto scenario :
             {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
          SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" +
                       std::to_string(code.first) + " k=" +
                       std::to_string(code.second) + " batch=" +
                       std::to_string(batch) + " " +
                       core::to_string(scenario) +
                       " (override with FASTPR_PROPERTY_SEED_BASE)");
          Rng rng(seed);
          const auto layout = cluster::StripeLayout::random(
              /*num_nodes=*/30, code.first, /*num_stripes=*/120, rng);
          cluster::ClusterState state(
              30, /*num_hot_standby=*/3,
              cluster::BandwidthProfile{MBps(100), Gbps(1)});
          std::vector<NodeId> nodes;
          for (NodeId node = 0; node < 30; ++node) nodes.push_back(node);
          std::stable_sort(nodes.begin(), nodes.end(),
                           [&layout](NodeId a, NodeId b) {
                             return layout.load(a) > layout.load(b);
                           });
          for (int i = 0; i < batch; ++i) {
            state.set_health(nodes[static_cast<size_t>(i)],
                             cluster::NodeHealth::kSoonToFail);
          }
          core::PlannerOptions options;
          options.scenario = scenario;
          options.k_repair = code.second;
          options.chunk_bytes = static_cast<double>(MB(64));
          core::MultiStfPlanner planner(layout, state, options);
          const auto plan = planner.plan_fastpr();
          const auto model = planner.cost_model();

          sim::SimParams sp;
          sp.chunk_bytes = options.chunk_bytes;
          sp.disk_bw = MBps(100);
          sp.net_bw = Gbps(1);
          sp.k_repair = code.second;
          sp.hot_standby = 3;
          sp.scenario = scenario;
          const auto result = sim::simulate(plan, sp);
          ASSERT_EQ(result.round_times.size(), plan.rounds.size());
          for (size_t r = 0; r < plan.rounds.size(); ++r) {
            std::unordered_map<NodeId, int> per_src;
            for (const auto& task : plan.rounds[r].migrations) {
              ++per_src[task.src];
            }
            std::vector<int> cm_per_stf;
            for (const auto& [src, count] : per_src) {
              (void)src;
              cm_per_stf.push_back(count);
            }
            const int cr =
                static_cast<int>(plan.rounds[r].reconstructions.size());
            const double expected = model.round_time_multi(cr, cm_per_stf);
            EXPECT_NEAR(result.round_times[r], expected,
                        1e-9 * expected + 1e-12)
                << "round " << r;
          }
        }
      }
    }
  }
}

TEST(MultiStfDifferential, JointBeatsSequentialAndRespectsOptimum) {
  // No paper baseline exists for batch > 1; the sequential composition
  // of single-STF plans is the in-repo reference the joint planner must
  // not lose to, and Eq. (2) generalized stays a lower bound.
  for (int s = 0; s < seed_count(); ++s) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(s);
    for (int batch = 1; batch <= 3; ++batch) {
      for (auto scenario :
           {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
        SCOPED_TRACE("seed=" + std::to_string(seed) + " batch=" +
                     std::to_string(batch) + " " +
                     core::to_string(scenario) +
                     " (override with FASTPR_PROPERTY_SEED_BASE)");
        sim::ExperimentConfig cfg;
        cfg.num_nodes = 40;
        cfg.num_stripes = 300;
        cfg.n = 9;
        cfg.k = 6;
        cfg.chunk_bytes = static_cast<double>(MB(64));
        cfg.disk_bw = MBps(100);
        cfg.net_bw = Gbps(1);
        cfg.hot_standby = 3;
        cfg.scenario = scenario;
        cfg.seed = seed;
        cfg.stf_batch = batch;
        const auto t = sim::run_multi_experiment(cfg);
        EXPECT_GT(t.total_chunks, 0);
        EXPECT_GT(t.joint_rounds, 0);
        EXPECT_LE(t.optimum, t.joint * 1.001);
        EXPECT_LE(t.joint, t.sequential * 1.001);
        if (batch > 1) {
          EXPECT_LE(t.joint_rounds, t.sequential_rounds);
        }
      }
    }
  }
}

TEST(MultiStfTestbed, ExecutedRoundsMatchAlgorithmTwoPlan) {
  agent::TestbedOptions opts;
  opts.num_storage = 12;
  opts.num_standby = 2;
  opts.disk_bytes_per_sec = 0;  // unthrottled: structure, not timing
  opts.net_bytes_per_sec = 0;
  opts.chunk_bytes = 64 * kKiB;
  opts.packet_bytes = 16 * kKiB;
  opts.num_stripes = 20;
  opts.seed = 5;
  ec::RsCode code(6, 4);
  agent::Testbed tb(opts, code);
  const auto batch = tb.flag_stf_batch(2);
  ASSERT_EQ(batch.size(), 2u);

  auto planner = tb.make_multi_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_fastpr();
  ASSERT_GT(plan.rounds.size(), 0u);
  // Plan order is ascending node id; flag order is load-descending.
  auto sorted_batch = batch;
  std::sort(sorted_batch.begin(), sorted_batch.end());
  ASSERT_EQ(plan.stf_nodes, sorted_batch);

  const auto report = tb.execute(plan);
  EXPECT_TRUE(report.success)
      << (report.errors.empty() ? "" : report.errors.front());
  // Satellite check: the testbed executes exactly the Algorithm-2
  // round structure, one barrier per planned round.
  EXPECT_EQ(report.repair.rounds.size(), plan.rounds.size());
  EXPECT_TRUE(tb.verify(plan));
  EXPECT_TRUE(tb.verify(report, plan));

  // Per-member progress: one entry per batch member, plan order, sums
  // consistent, nobody died, nothing unrepaired.
  ASSERT_EQ(report.stf_progress.size(), 2u);
  ASSERT_EQ(report.repair.per_stf.size(), 2u);
  int planned_total = 0;
  for (size_t i = 0; i < report.stf_progress.size(); ++i) {
    const auto& p = report.stf_progress[i];
    EXPECT_EQ(p.stf, sorted_batch[i]);
    EXPECT_EQ(p.planned, tb.layout().load(sorted_batch[i]));
    EXPECT_EQ(p.migrated + p.reconstructed, p.planned);
    EXPECT_EQ(p.unrepaired, 0);
    EXPECT_FALSE(p.died);
    EXPECT_EQ(report.repair.per_stf[i].stf, static_cast<int>(p.stf));
    EXPECT_EQ(report.repair.per_stf[i].planned, p.planned);
    planned_total += p.planned;
  }
  EXPECT_EQ(planned_total, report.repaired());
}

}  // namespace
}  // namespace fastpr
