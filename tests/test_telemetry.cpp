// Telemetry layer: histogram bucket math, metric atomicity under
// concurrency, trace-event JSON goldens, RepairReport export, and the
// end-to-end check that a testbed run's per-round report matches the
// (cr, cm) structure Algorithm 2 planned.
//
// TraceLog::append is unconditional (only spans gate on the build
// flag), so the golden tests run identically with telemetry compiled
// out; value-producing mutations are #if-gated to the matching
// expectation instead.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "agent/testbed.h"
#include "core/repair_plan.h"
#include "ec/rs_code.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/repair_report.h"
#include "telemetry/trace.h"
#include "util/units.h"

namespace fastpr {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::LinkBandwidth;
using telemetry::links_to_json;
using telemetry::MetricsRegistry;
using telemetry::RepairReport;
using telemetry::RepairRoundStats;
using telemetry::TraceEvent;
using telemetry::TraceLog;

// ---------------------------------------------------------------------------
// Histogram bucket math (pure functions — identical in both build modes).

TEST(Histogram, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::bucket_index(-5), 0);
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(7), 3);
  EXPECT_EQ(Histogram::bucket_index(8), 4);
  EXPECT_EQ(Histogram::bucket_index(1023), 10);
  EXPECT_EQ(Histogram::bucket_index(1024), 11);
  EXPECT_EQ(Histogram::bucket_index(INT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(Histogram, BucketUpperBounds) {
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1);
  EXPECT_EQ(Histogram::bucket_upper_bound(2), 3);
  EXPECT_EQ(Histogram::bucket_upper_bound(3), 7);
  EXPECT_EQ(Histogram::bucket_upper_bound(10), 1023);
  EXPECT_EQ(Histogram::bucket_upper_bound(62), (int64_t{1} << 62) - 1);
  EXPECT_EQ(Histogram::bucket_upper_bound(63), INT64_MAX);
}

TEST(Histogram, EveryValueFitsItsBucket) {
  for (int64_t v : {int64_t{1}, int64_t{2}, int64_t{3}, int64_t{100},
                    int64_t{4095}, int64_t{4096}, int64_t{1} << 40,
                    INT64_MAX}) {
    const int b = Histogram::bucket_index(v);
    EXPECT_LE(v, Histogram::bucket_upper_bound(b)) << "v=" << v;
    if (b > 1) {
      EXPECT_GT(v, Histogram::bucket_upper_bound(b - 1)) << "v=" << v;
    }
  }
}

TEST(Histogram, SnapshotPercentileNearestRank) {
  Histogram::Snapshot snap;  // hand-filled: independent of observe()
  EXPECT_EQ(snap.percentile(0.5), 0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);

  snap.buckets[1] = 3;  // three samples of value 1
  snap.buckets[3] = 1;  // one sample in [4, 7]
  snap.count = 4;
  snap.sum = 3 + 5;
  EXPECT_EQ(snap.percentile(0.0), 1);
  EXPECT_EQ(snap.percentile(0.5), 1);
  EXPECT_EQ(snap.percentile(1.0), 7);
  // Out-of-range p clamps rather than crashing.
  EXPECT_EQ(snap.percentile(-1.0), 1);
  EXPECT_EQ(snap.percentile(2.0), 7);
  EXPECT_DOUBLE_EQ(snap.mean(), 2.0);
}

#if FASTPR_TELEMETRY_ENABLED

TEST(Histogram, ObserveFillsLogScaleBuckets) {
  Histogram h;
  for (int64_t v : {0, 1, 2, 3, 4}) h.observe(v);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5);
  EXPECT_EQ(snap.sum, 10);
  EXPECT_EQ(snap.buckets[0], 1);
  EXPECT_EQ(snap.buckets[1], 1);
  EXPECT_EQ(snap.buckets[2], 2);
  EXPECT_EQ(snap.buckets[3], 1);
  EXPECT_EQ(snap.percentile(1.0), 7);
  h.reset();
  EXPECT_EQ(h.snapshot().count, 0);
  EXPECT_EQ(h.snapshot().sum, 0);
}

TEST(Metrics, ConcurrentCounterIncrementsAreExact) {
  // The relaxed-atomic hot path must not lose updates; this is also the
  // data-race probe for the tsan preset.
  Counter c;
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(i % 1024);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), int64_t{kThreads} * kPerThread);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, int64_t{kThreads} * kPerThread);
  int64_t per_thread_sum = 0;
  for (int i = 0; i < kPerThread; ++i) per_thread_sum += i % 1024;
  EXPECT_EQ(snap.sum, kThreads * per_thread_sum);
}

#else  // !FASTPR_TELEMETRY_ENABLED

TEST(Metrics, DisabledBuildMutationsAreNoOps) {
  Counter c;
  c.add(5);
  EXPECT_EQ(c.value(), 0);
  Gauge g;
  g.set(7);
  g.add(3);
  EXPECT_EQ(g.value(), 0);
  Histogram h;
  h.observe(42);
  EXPECT_EQ(h.snapshot().count, 0);
}

#endif  // FASTPR_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// Registry: reference stability and export shape.

TEST(MetricsRegistry, SameNameReturnsSameMetric) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.a");
  EXPECT_EQ(&a, &reg.counter("x.a"));
  EXPECT_NE(&a, &reg.counter("x.b"));
  Histogram& h = reg.histogram("x.h");
  EXPECT_EQ(&h, &reg.histogram("x.h"));
  // reset() zeroes but never invalidates references.
  a.add(1);
  reg.reset();
  EXPECT_EQ(a.value(), 0);
  a.add(1);  // still wired to the registry
  EXPECT_EQ(reg.snapshot().counters[0].first, "x.a");
}

TEST(MetricsRegistry, SnapshotJsonAndCsvGolden) {
  MetricsRegistry reg;
  reg.counter("b.x").add(1);
  reg.counter("a.y").add(2);
  reg.gauge("g").set(7);
  reg.histogram("h").observe(3);
  reg.histogram("h").observe(500);
#if FASTPR_TELEMETRY_ENABLED
  EXPECT_EQ(reg.snapshot().to_json(),
            "{\"counters\":{\"a.y\":2,\"b.x\":1},\"gauges\":{\"g\":7},"
            "\"histograms\":{\"h\":{\"count\":2,\"sum\":503,\"mean\":251.5,"
            "\"p50\":511,\"p99\":511,\"buckets\":[{\"le\":3,\"count\":1},"
            "{\"le\":511,\"count\":1}]}}}");
  EXPECT_EQ(reg.snapshot().to_csv(),
            "kind,name,count,sum,value\n"
            "counter,a.y,,,2\n"
            "counter,b.x,,,1\n"
            "gauge,g,,,7\n"
            "histogram,h,2,503,\n");
#else
  // Compiled out: same structure (name-sorted keys), all values zero.
  EXPECT_EQ(reg.snapshot().to_json(),
            "{\"counters\":{\"a.y\":0,\"b.x\":0},\"gauges\":{\"g\":0},"
            "\"histograms\":{\"h\":{\"count\":0,\"sum\":0,\"mean\":0,"
            "\"p50\":0,\"p99\":0,\"buckets\":[]}}}");
  EXPECT_EQ(reg.snapshot().to_csv(),
            "kind,name,count,sum,value\n"
            "counter,a.y,,,0\n"
            "counter,b.x,,,0\n"
            "gauge,g,,,0\n"
            "histogram,h,0,0,\n");
#endif
}

TEST(MetricsRegistry, PrometheusGolden) {
  MetricsRegistry reg;
  reg.counter("b.x").add(1);
  reg.counter("a.y").add(2);
  reg.gauge("g").set(7);
  reg.histogram("h").observe(3);
  reg.histogram("h").observe(500);
#if FASTPR_TELEMETRY_ENABLED
  EXPECT_EQ(reg.snapshot().to_prometheus(),
            "# TYPE a_y counter\na_y 2\n"
            "# TYPE b_x counter\nb_x 1\n"
            "# TYPE g gauge\ng 7\n"
            "# TYPE h histogram\n"
            "h_bucket{le=\"3\"} 1\n"
            "h_bucket{le=\"511\"} 2\n"
            "h_bucket{le=\"+Inf\"} 2\n"
            "h_sum 503\n"
            "h_count 2\n");
#else
  EXPECT_EQ(reg.snapshot().to_prometheus(),
            "# TYPE a_y counter\na_y 0\n"
            "# TYPE b_x counter\nb_x 0\n"
            "# TYPE g gauge\ng 0\n"
            "# TYPE h histogram\n"
            "h_bucket{le=\"+Inf\"} 0\n"
            "h_sum 0\n"
            "h_count 0\n");
#endif
}

TEST(Json, EscapingAndNumbers) {
  EXPECT_EQ(telemetry::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(telemetry::json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(telemetry::json_str("hi"), "\"hi\"");
  EXPECT_EQ(telemetry::json_num(0.5), "0.5");
  EXPECT_EQ(telemetry::json_num(0.0), "0");
  EXPECT_EQ(telemetry::json_num(1.0 / 0.0), "null");
  EXPECT_EQ(telemetry::json_num(int64_t{42}), "42");
}

// ---------------------------------------------------------------------------
// Trace log: golden Chrome trace_event output from injected events.
// append() is unconditional by design, so these run in both modes.

TEST(TraceLog, ChromeJsonGolden) {
  TraceLog log;
  TraceEvent later;
  later.name = "b.second";
  later.category = "x";
  later.start_us = 200;
  later.duration_us = 50;
  later.tid = 2;
  TraceEvent earlier;
  earlier.name = "a.first";
  earlier.category = "x";
  earlier.start_us = 100;
  earlier.duration_us = 25;
  earlier.tid = 1;
  earlier.arg = 7;
  earlier.arg_name = "round";
  // Appended out of order: snapshot() sorts by start time.
  log.append(later);
  log.append(earlier);
  EXPECT_EQ(log.to_chrome_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
            "{\"name\":\"a.first\",\"cat\":\"x\",\"ph\":\"X\",\"ts\":100,"
            "\"dur\":25,\"pid\":1,\"tid\":1,\"args\":{\"round\":7}},"
            "{\"name\":\"b.second\",\"cat\":\"x\",\"ph\":\"X\",\"ts\":200,"
            "\"dur\":50,\"pid\":1,\"tid\":2}]}");
  EXPECT_EQ(log.dropped(), 0);
  log.clear();
  EXPECT_EQ(log.to_chrome_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

TEST(TraceLog, SnapshotDrainsAndAccumulates) {
  TraceLog log;
  TraceEvent ev;
  ev.name = "e";
  ev.category = "x";
  log.append(ev);
  EXPECT_EQ(log.snapshot().size(), 1u);
  // Drained events stay in the log; new appends accumulate on top.
  log.append(ev);
  EXPECT_EQ(log.snapshot().size(), 2u);
  log.clear();
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(TraceLog, OffsetCorrectedCausalJson) {
  TraceEvent ev;
  ev.name = "agent.handle";
  ev.category = "agent";
  ev.start_us = 1000;
  ev.duration_us = 10;
  ev.tid = 1;
  ev.node = 3;
  ev.trace_id = 9;
  // Golden fixture built by hand, not a forged product span.
  // fastpr-lint: allow(trace-context)
  ev.span_id = 11;
  ev.parent_span_id = 10;
  // Node 3's clock runs 250µs ahead of the exporter's: its events
  // shift earlier by the estimated offset; pid = node + 2.
  EXPECT_EQ(
      telemetry::events_to_chrome_json({ev}, {{3, 250}}),
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"agent.handle\",\"cat\":\"agent\",\"ph\":\"X\","
      "\"ts\":750,\"dur\":10,\"pid\":5,\"tid\":1,"
      "\"args\":{\"trace\":9,\"span\":11,\"parent\":10}}]}");
  // An unlisted node keeps its raw timestamps.
  EXPECT_NE(telemetry::events_to_chrome_json({ev}, {{4, 250}})
                .find("\"ts\":1000"),
            std::string::npos);
}

// The regression the per-thread buffers were designed against: a span
// recorded by a short-lived worker must survive the worker's exit (its
// buffer flushes into the central log and deregisters).
TEST(TraceLog, ThreadExitFlushesBuffer) {
  TraceLog log;
  TraceEvent ev;
  ev.name = "worker.event";
  ev.category = "test";
  std::thread([&] { log.append(ev); }).join();
  EXPECT_EQ(log.thread_buffer_count(), 0u);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "worker.event");
  EXPECT_EQ(log.dropped(), 0);
}

TEST(Trace, ThreadIdsAreStablePerThread) {
  const uint32_t mine = telemetry::this_thread_id();
  EXPECT_EQ(telemetry::this_thread_id(), mine);
  EXPECT_GE(mine, 1u);
  uint32_t other = 0;
  std::thread([&] { other = telemetry::this_thread_id(); }).join();
  EXPECT_NE(other, mine);
}

TEST(TraceSpan, RecordsIntoGlobalLogWhenEnabled) {
#if FASTPR_TELEMETRY_ENABLED
  auto& log = TraceLog::global();
  log.clear();

  // Disarmed: a span leaves no event.
  { FASTPR_TRACE_SPAN("test.disarmed", "test"); }
  for (const auto& ev : log.snapshot()) {
    EXPECT_STRNE(ev.name, "test.disarmed");
  }

  log.set_enabled(true);
  { FASTPR_TRACE_SPAN("test.span", "test", 42, "round"); }
  log.set_enabled(false);
  bool found = false;
  for (const auto& ev : log.snapshot()) {
    if (std::string(ev.name) != "test.span") continue;
    found = true;
    EXPECT_STREQ(ev.category, "test");
    EXPECT_EQ(ev.arg, 42);
    EXPECT_STREQ(ev.arg_name, "round");
    EXPECT_GE(ev.duration_us, 0);
    EXPECT_EQ(ev.tid, telemetry::this_thread_id());
  }
  EXPECT_TRUE(found);
  log.clear();
#else
  GTEST_SKIP() << "telemetry compiled out: spans are no-op stubs";
#endif
}

// ---------------------------------------------------------------------------
// RepairReport export goldens.

TEST(RepairReport, TotalsAndJsonGolden) {
  RepairReport report;
  report.total_seconds = 0.75;
  RepairRoundStats r1;
  r1.round = 1;
  r1.cr = 2;
  r1.cm = 3;
  r1.fallbacks = 1;
  r1.retries = 2;
  r1.bytes_reconstructed = 2048;
  r1.bytes_migrated = 3072;
  r1.duration_seconds = 0.5;
  r1.stf_bw_utilization = 0.75;
  r1.tr_seconds = 0.3;
  r1.tm_seconds = 0.5;
  RepairRoundStats r2;
  r2.round = 2;
  r2.cr = 1;
  r2.bytes_reconstructed = 1024;
  r2.duration_seconds = 0.25;
  report.rounds = {r1, r2};
  report.predicted = {{2, 3, 0.4, 0.25, 0.4}, {1, 0, 0.2}};
  report.degraded_at_round = 2;

  EXPECT_EQ(report.total_cr(), 3);
  EXPECT_EQ(report.total_cm(), 3);
  EXPECT_EQ(
      report.to_json(),
      "{\"total_seconds\":0.75,\"total_cr\":3,\"total_cm\":3,"
      "\"degraded_at_round\":2,\"rounds\":["
      "{\"round\":1,\"cr\":2,\"cm\":3,\"fallbacks\":1,\"retries\":2,"
      "\"bytes_reconstructed\":2048,\"bytes_migrated\":3072,"
      "\"duration_seconds\":0.5,\"stf_bw_utilization\":0.75,"
      "\"tr_seconds\":0.3,\"tm_seconds\":0.5,"
      "\"predicted\":{\"cr\":2,\"cm\":3,\"duration_seconds\":0.4,"
      "\"tr_seconds\":0.25,\"tm_seconds\":0.4},"
      "\"drift\":{\"round_time_error_seconds\":0.1,"
      "\"round_time_ratio\":1.25,\"tr_ratio\":1.2,\"tm_ratio\":1.25}},"
      "{\"round\":2,\"cr\":1,\"cm\":0,\"fallbacks\":0,\"retries\":0,"
      "\"bytes_reconstructed\":1024,\"bytes_migrated\":0,"
      "\"duration_seconds\":0.25,\"stf_bw_utilization\":0,"
      "\"predicted\":{\"cr\":1,\"cm\":0,\"duration_seconds\":0.2},"
      "\"drift\":{\"round_time_error_seconds\":0.05,"
      "\"round_time_ratio\":1.25}}]}");
  EXPECT_EQ(report.to_csv(),
            "round,cr,cm,fallbacks,retries,bytes_reconstructed,"
            "bytes_migrated,duration_seconds,stf_bw_utilization\n"
            "1,2,3,1,2,2048,3072,0.5,0.75\n"
            "2,1,0,0,0,1024,0,0.25,0\n");
}

TEST(RepairReport, JsonOmitsPredictionsWhenAbsent) {
  RepairReport report;
  RepairRoundStats r;
  r.round = 1;
  r.cr = 1;
  report.rounds = {r};
  EXPECT_EQ(report.to_json().find("predicted"), std::string::npos);
  EXPECT_EQ(report.to_json().find("drift"), std::string::npos);
  EXPECT_EQ(report.to_json().find("links"), std::string::npos);
}

TEST(RepairReport, LinksJsonGolden) {
  LinkBandwidth l;
  l.src = 3;
  l.dst = 7;
  l.tx_bytes = 4096;
  l.rx_bytes = 4096;
  l.ewma_bytes_per_sec = 1.5e6;
  l.expected_bytes_per_sec = 4e6;
  l.injected_delay_us = 250;
  l.straggler = true;
  EXPECT_EQ(links_to_json({l}),
            "[{\"src\":3,\"dst\":7,\"tx_bytes\":4096,\"rx_bytes\":4096,"
            "\"ewma_bytes_per_sec\":1.5e+06,"
            "\"expected_bytes_per_sec\":4e+06,"
            "\"injected_delay_us\":250,\"straggler\":true}]");

  RepairReport report;
  RepairRoundStats r;
  r.round = 1;
  report.rounds = {r};
  report.links = {l};
  EXPECT_NE(report.to_json().find("\"links\":[{\"src\":3"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// End to end: an executed testbed plan's measured round structure must
// match what Algorithm 2 scheduled, and the predictions align by index.

TEST(RepairReport, TestbedRoundsMatchScheduledPlan) {
  ec::RsCode code(6, 4);
  agent::TestbedOptions opts;
  opts.num_storage = 12;
  opts.num_standby = 2;
  opts.chunk_bytes = 64 * kKiB;
  opts.packet_bytes = 16 * kKiB;
  opts.num_stripes = 30;
  opts.seed = 7;
  agent::Testbed tb(opts, code);
  tb.flag_stf();
  auto planner = tb.make_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_fastpr();
  ASSERT_FALSE(plan.rounds.empty());

#if FASTPR_TELEMETRY_ENABLED
  telemetry::TraceLog::global().clear();
  telemetry::TraceLog::global().set_enabled(true);
#endif
  auto report = tb.execute(plan);
#if FASTPR_TELEMETRY_ENABLED
  telemetry::TraceLog::global().set_enabled(false);
#endif
  ASSERT_TRUE(report.success) << (report.errors.empty()
                                      ? ""
                                      : report.errors.front());
  EXPECT_TRUE(tb.verify(plan));

  const auto& repair = report.repair;
  ASSERT_EQ(repair.rounds.size(), plan.rounds.size());
  double round_sum = 0;
  for (size_t i = 0; i < plan.rounds.size(); ++i) {
    const auto& measured = repair.rounds[i];
    EXPECT_EQ(measured.round, static_cast<int>(i) + 1);
    EXPECT_EQ(measured.cr,
              static_cast<int>(plan.rounds[i].reconstructions.size()));
    EXPECT_EQ(measured.cm,
              static_cast<int>(plan.rounds[i].migrations.size()));
    EXPECT_EQ(measured.fallbacks, 0);
    EXPECT_GT(measured.duration_seconds, 0.0);
    EXPECT_EQ(measured.bytes_reconstructed,
              static_cast<int64_t>(measured.cr) *
                  static_cast<int64_t>(opts.chunk_bytes));
    EXPECT_EQ(measured.bytes_migrated,
              static_cast<int64_t>(measured.cm) *
                  static_cast<int64_t>(opts.chunk_bytes));
    round_sum += measured.duration_seconds;
  }
  EXPECT_EQ(repair.total_cr() + repair.total_cm(), plan.total_repaired());
  EXPECT_NEAR(repair.total_seconds, report.total_seconds, 1e-9);
  EXPECT_LE(round_sum, report.total_seconds + 1e-9);

  // Cost-model predictions line up round for round with the schedule.
  const auto predicted = tb.predict_rounds(plan, core::Scenario::kScattered);
  ASSERT_EQ(predicted.size(), plan.rounds.size());
  for (size_t i = 0; i < predicted.size(); ++i) {
    EXPECT_EQ(predicted[i].cr,
              static_cast<int>(plan.rounds[i].reconstructions.size()));
    EXPECT_EQ(predicted[i].cm,
              static_cast<int>(plan.rounds[i].migrations.size()));
    EXPECT_GT(predicted[i].duration_seconds, 0.0);
  }

#if FASTPR_TELEMETRY_ENABLED
  // The run left a usable timeline behind: per-round coordinator spans
  // and per-chunk streaming spans, exported as Chrome trace JSON.
  const std::string trace = telemetry::TraceLog::global().to_chrome_json();
  EXPECT_NE(trace.find("\"coordinator.round\""), std::string::npos);
  EXPECT_NE(trace.find("\"agent.stream_chunk\""), std::string::npos);
  EXPECT_NE(trace.find("\"coordinator.execute\""), std::string::npos);
  telemetry::TraceLog::global().clear();
#endif
}

}  // namespace
}  // namespace fastpr
