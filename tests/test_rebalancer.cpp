// Background rebalancer: load spread shrinks, invariants preserved.
#include "cluster/rebalancer.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fastpr::cluster {
namespace {

std::vector<NodeId> all_nodes(const StripeLayout& layout) {
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < layout.num_nodes(); ++n) nodes.push_back(n);
  return nodes;
}

TEST(Rebalancer, FlattensSkewedLayout) {
  // All stripes pinned to the first 5 of 10 nodes → heavy skew.
  StripeLayout layout(10, 3);
  Rng rng(3);
  for (int s = 0; s < 60; ++s) {
    auto picks = rng.sample_distinct(5, 3);
    layout.add_stripe({picks[0], picks[1], picks[2]});
  }
  const auto report = rebalance(layout, all_nodes(layout));
  layout.check_invariants();
  EXPECT_GT(report.moves, 0);
  EXPECT_LE(report.max_load_after - report.min_load_after, 1);
  EXPECT_LT(report.max_load_after, report.max_load_before);
}

TEST(Rebalancer, AlreadyBalancedIsNoop) {
  StripeLayout layout(6, 3);
  // Perfectly even by construction: each node appears in exactly 2
  // stripes.
  layout.add_stripe({0, 1, 2});
  layout.add_stripe({3, 4, 5});
  layout.add_stripe({0, 3, 4});
  layout.add_stripe({1, 2, 5});
  const auto report = rebalance(layout, all_nodes(layout));
  EXPECT_EQ(report.moves, 0);
}

TEST(Rebalancer, RespectsEligibleSubset) {
  StripeLayout layout(10, 3);
  Rng rng(4);
  for (int s = 0; s < 40; ++s) {
    auto picks = rng.sample_distinct(6, 3);
    layout.add_stripe({picks[0], picks[1], picks[2]});
  }
  // Node 9 is "soon to fail": exclude it and check it never gains load.
  std::vector<NodeId> eligible;
  for (NodeId n = 0; n < 9; ++n) eligible.push_back(n);
  const int load9_before = layout.load(9);
  rebalance(layout, eligible);
  layout.check_invariants();
  EXPECT_EQ(layout.load(9), load9_before);
}

TEST(Rebalancer, ToleranceRespected) {
  StripeLayout layout(8, 2);
  Rng rng(5);
  for (int s = 0; s < 50; ++s) {
    auto picks = rng.sample_distinct(4, 2);
    layout.add_stripe({picks[0], picks[1]});
  }
  const auto report = rebalance(layout, all_nodes(layout), /*tolerance=*/3);
  EXPECT_LE(report.max_load_after - report.min_load_after, 3);
}

TEST(Rebalancer, PostRepairScenario) {
  // After a scattered repair, the STF node is empty and others carry its
  // chunks — exactly the imbalance §II-B says the background process
  // fixes. Simulate by moving chunks off node 0, then rebalance.
  Rng rng(6);
  StripeLayout layout = StripeLayout::random(12, 4, 90, rng);
  const auto on0 = layout.chunks_on(0);
  for (ChunkRef c : std::vector<ChunkRef>(on0.begin(), on0.end())) {
    for (NodeId dst = 1; dst < 12; ++dst) {
      if (!layout.stripe_uses_node(c.stripe, dst)) {
        layout.move_chunk(c, dst);
        break;
      }
    }
  }
  ASSERT_EQ(layout.load(0), 0);
  const auto report = rebalance(layout, all_nodes(layout));
  layout.check_invariants();
  EXPECT_GT(layout.load(0), 0);
  EXPECT_LE(report.max_load_after - report.min_load_after, 1);
}

}  // namespace
}  // namespace fastpr::cluster
