// Algorithm 1: reconstruction sets — exact cover, matching validity,
// the paper's Figure 5 worked example, and the swap-optimization gain.
#include "core/recon_sets.h"

#include <gtest/gtest.h>

#include <set>

#include "util/check.h"
#include "util/rng.h"

namespace fastpr::core {
namespace {

using cluster::ChunkRef;
using cluster::NodeId;
using cluster::StripeLayout;

std::vector<NodeId> healthy_except(int num_nodes, NodeId stf) {
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (n != stf) nodes.push_back(n);
  }
  return nodes;
}

/// Asserts the sets exactly cover the STF node's chunks, each valid.
void check_cover(const StripeLayout& layout, NodeId stf,
                 const std::vector<NodeId>& healthy, int k,
                 const std::vector<std::vector<ChunkRef>>& sets) {
  std::set<std::pair<int, int>> covered;
  for (const auto& set : sets) {
    EXPECT_FALSE(set.empty());
    EXPECT_TRUE(is_valid_reconstruction_set(layout, stf, healthy, k, set));
    for (ChunkRef c : set) {
      EXPECT_TRUE(covered.emplace(c.stripe, c.index).second)
          << "chunk covered twice";
    }
  }
  EXPECT_EQ(covered.size(), layout.chunks_on(stf).size());
}

TEST(ReconSets, Figure5WorkedExample) {
  // The paper's Figure 5: 4 stripes of RS(5,3) over 10 nodes; the STF
  // node stores one chunk of each. The initial greedy set {C1, C2} can
  // be improved by swapping C2 for C3, unlocking C4: the optimized
  // partition is {{C1, C3, C4}, {C2}} — 2 sets instead of 3.
  //
  // Layout engineered so that:
  //   C1 (stripe 0) helpers ⊂ {1,2,3,4};  C2 (stripe 1) ⊂ {3,4,5,6};
  //   C3 (stripe 2) ⊂ {5,6,7,8};          C4 (stripe 3) ⊂ {1,2,8,9*};
  // with k = 3 and 9 healthy nodes, {C1,C3,C4} admits a perfect
  // matching but {C1,C2,+anything} does not.
  StripeLayout layout(10, 5);
  const NodeId stf = 0;
  layout.add_stripe({0, 1, 2, 3, 4});  // C1
  layout.add_stripe({0, 3, 4, 5, 6});  // C2
  layout.add_stripe({0, 5, 6, 7, 8});  // C3
  layout.add_stripe({0, 1, 2, 8, 9});  // C4
  const auto healthy = healthy_except(10, stf);

  ReconSetOptions opt_on;
  opt_on.optimize = true;
  ReconSetStats stats;
  const auto sets =
      find_reconstruction_sets(layout, stf, healthy, 3, opt_on, &stats);
  check_cover(layout, stf, healthy, 3, sets);

  ReconSetOptions opt_off;
  opt_off.optimize = false;
  const auto sets_ini =
      find_reconstruction_sets(layout, stf, healthy, 3, opt_off);
  check_cover(layout, stf, healthy, 3, sets_ini);

  // Both partitions have 2 sets here, but the swap pass grows the first
  // set to the capacity of 3 chunks (C1, C3, C4 in the paper's telling)
  // where plain greedy stalls at {C1, C2} — more chunks repaired in the
  // first, fully parallel round.
  ASSERT_EQ(sets.size(), 2u);
  ASSERT_EQ(sets_ini.size(), 2u);
  EXPECT_GT(stats.swaps, 0);
  EXPECT_EQ(std::max(sets[0].size(), sets[1].size()), 3u);
  EXPECT_EQ(std::max(sets_ini[0].size(), sets_ini[1].size()), 2u);
}

class RandomReconSetTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomReconSetTest, CoverAndValidityOnRandomLayouts) {
  const int k = GetParam();
  Rng rng(100 + k);
  const int num_nodes = 40;
  const auto layout =
      StripeLayout::random(num_nodes, k + 3, 300, rng);
  // Most-loaded node as STF.
  NodeId stf = 0;
  for (NodeId n = 1; n < num_nodes; ++n) {
    if (layout.load(n) > layout.load(stf)) stf = n;
  }
  const auto healthy = healthy_except(num_nodes, stf);
  const auto sets =
      find_reconstruction_sets(layout, stf, healthy, k, ReconSetOptions{});
  check_cover(layout, stf, healthy, k, sets);
  // No set exceeds the matching capacity floor((M-1)/k).
  for (const auto& set : sets) {
    EXPECT_LE(static_cast<int>(set.size()),
              static_cast<int>(healthy.size()) / k);
  }
}

INSTANTIATE_TEST_SUITE_P(KValues, RandomReconSetTest,
                         ::testing::Values(2, 3, 4, 6));

TEST(ReconSets, OptimizationNeverIncreasesSetCount) {
  // d_opt <= d_ini on random layouts (Experiment B.5's premise).
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const auto layout = StripeLayout::random(30, 9, 250, rng);
    NodeId stf = 0;
    for (NodeId n = 1; n < 30; ++n) {
      if (layout.load(n) > layout.load(stf)) stf = n;
    }
    const auto healthy = healthy_except(30, stf);
    ReconSetOptions on, off;
    on.optimize = true;
    off.optimize = false;
    const auto d_opt =
        find_reconstruction_sets(layout, stf, healthy, 6, on).size();
    const auto d_ini =
        find_reconstruction_sets(layout, stf, healthy, 6, off).size();
    EXPECT_LE(d_opt, d_ini) << "seed " << seed;
  }
}

TEST(ReconSets, ChunkGroupingStillCovers) {
  Rng rng(5);
  const auto layout = StripeLayout::random(25, 6, 200, rng);
  NodeId stf = 0;
  for (NodeId n = 1; n < 25; ++n) {
    if (layout.load(n) > layout.load(stf)) stf = n;
  }
  const auto healthy = healthy_except(25, stf);
  ReconSetOptions grouped;
  grouped.chunk_group_size = 10;
  const auto sets =
      find_reconstruction_sets(layout, stf, healthy, 4, grouped);
  check_cover(layout, stf, healthy, 4, sets);
  // Grouping can only fragment: at least ceil(U / group) sets.
  const size_t u = layout.chunks_on(stf).size();
  EXPECT_GE(sets.size(), (u + 9) / 10);
}

TEST(ReconSets, MaxSetSizeCapRespected) {
  Rng rng(6);
  const auto layout = StripeLayout::random(40, 5, 300, rng);
  NodeId stf = 0;
  for (NodeId n = 1; n < 40; ++n) {
    if (layout.load(n) > layout.load(stf)) stf = n;
  }
  const auto healthy = healthy_except(40, stf);
  ReconSetOptions capped;
  capped.max_set_size = 3;
  const auto sets =
      find_reconstruction_sets(layout, stf, healthy, 4, capped);
  check_cover(layout, stf, healthy, 4, sets);
  for (const auto& set : sets) EXPECT_LE(set.size(), 3u);
}

TEST(ReconSets, SingleChunk) {
  StripeLayout layout(6, 4);
  layout.add_stripe({0, 1, 2, 3});
  const auto healthy = healthy_except(6, 0);
  const auto sets =
      find_reconstruction_sets(layout, 0, healthy, 3, ReconSetOptions{});
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].size(), 1u);
}

TEST(ReconSets, EmptyStfNode) {
  StripeLayout layout(6, 3);
  layout.add_stripe({1, 2, 3});  // node 0 holds nothing
  const auto healthy = healthy_except(6, 0);
  const auto sets =
      find_reconstruction_sets(layout, 0, healthy, 2, ReconSetOptions{});
  EXPECT_TRUE(sets.empty());
}

TEST(ReconSets, InsufficientHealthySourcesRejected) {
  // Stripe with only k-1 surviving chunk holders.
  StripeLayout layout(5, 4);
  layout.add_stripe({0, 1, 2, 3});
  // Healthy list excludes node 3 as well as the STF node 0.
  std::vector<NodeId> healthy = {1, 2, 4};
  EXPECT_THROW(
      find_reconstruction_sets(layout, 0, healthy, 3, ReconSetOptions{}),
      CheckFailure);
}

}  // namespace
}  // namespace fastpr::core
