// Reed–Solomon codec: MDS property, round-trips under every erasure
// pattern that should be decodable, repair paths, both constructions.
#include "ec/rs_code.h"

#include <gtest/gtest.h>

#include <random>

#include "ec/erasure_code.h"
#include "gf/gf256.h"
#include "util/check.h"

namespace fastpr::ec {
namespace {

std::vector<std::vector<uint8_t>> random_data(int k, size_t chunk_size,
                                              uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::vector<uint8_t>> data(static_cast<size_t>(k),
                                         std::vector<uint8_t>(chunk_size));
  for (auto& chunk : data) {
    for (auto& b : chunk) b = static_cast<uint8_t>(rng());
  }
  return data;
}

struct RsParam {
  int n;
  int k;
  RsCode::Construction construction;
};

class RsCodeTest : public ::testing::TestWithParam<RsParam> {};

TEST_P(RsCodeTest, GeneratorIsSystematic) {
  const auto p = GetParam();
  const RsCode code(p.n, p.k, p.construction);
  for (int r = 0; r < p.k; ++r) {
    for (int c = 0; c < p.k; ++c) {
      EXPECT_EQ(code.generator().at(r, c), r == c ? 1 : 0);
    }
  }
}

TEST_P(RsCodeTest, MdsPropertyRandomKSubsets) {
  const auto p = GetParam();
  const RsCode code(p.n, p.k, p.construction);
  std::mt19937 rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> rows(static_cast<size_t>(p.n));
    for (int i = 0; i < p.n; ++i) rows[static_cast<size_t>(i)] = i;
    std::shuffle(rows.begin(), rows.end(), rng);
    rows.resize(static_cast<size_t>(p.k));
    EXPECT_TRUE(code.generator().select_rows(rows).inverted().has_value());
  }
}

TEST_P(RsCodeTest, DecodeRecoversRandomErasures) {
  const auto p = GetParam();
  const RsCode code(p.n, p.k, p.construction);
  const size_t chunk_size = 257;  // odd size exercises region-op tails
  const auto data = random_data(p.k, chunk_size, 21);
  auto stripe = encode_stripe(code, data);
  const auto original = stripe;

  std::mt19937 rng(22);
  for (int erasures = 1; erasures <= p.n - p.k; ++erasures) {
    for (int trial = 0; trial < 20; ++trial) {
      auto damaged = original;
      std::vector<int> all(static_cast<size_t>(p.n));
      for (int i = 0; i < p.n; ++i) all[static_cast<size_t>(i)] = i;
      std::shuffle(all.begin(), all.end(), rng);
      std::vector<int> erased(all.begin(), all.begin() + erasures);
      for (int e : erased) {
        std::fill(damaged[static_cast<size_t>(e)].begin(),
                  damaged[static_cast<size_t>(e)].end(), 0);
      }
      std::vector<MutChunk> spans(damaged.begin(), damaged.end());
      ASSERT_TRUE(code.decode(erased, spans));
      EXPECT_EQ(damaged, original)
          << "erasures=" << erasures << " trial=" << trial;
    }
  }
}

TEST_P(RsCodeTest, TooManyErasuresRejected) {
  const auto p = GetParam();
  const RsCode code(p.n, p.k, p.construction);
  const auto data = random_data(p.k, 64, 23);
  auto stripe = encode_stripe(code, data);
  std::vector<int> erased;
  for (int i = 0; i <= p.n - p.k; ++i) erased.push_back(i);
  std::vector<MutChunk> spans(stripe.begin(), stripe.end());
  EXPECT_FALSE(code.decode(erased, spans));
}

TEST_P(RsCodeTest, RepairChunkMatchesOriginal) {
  const auto p = GetParam();
  const RsCode code(p.n, p.k, p.construction);
  const auto data = random_data(p.k, 128, 24);
  const auto stripe = encode_stripe(code, data);

  for (int lost = 0; lost < p.n; ++lost) {
    std::vector<bool> available(static_cast<size_t>(p.n), true);
    available[static_cast<size_t>(lost)] = false;
    const auto helpers = code.repair_helpers(lost, available);
    ASSERT_EQ(static_cast<int>(helpers.size()), p.k);

    std::vector<ConstChunk> helper_data;
    for (int h : helpers) {
      helper_data.emplace_back(stripe[static_cast<size_t>(h)]);
    }
    std::vector<uint8_t> out(128);
    code.repair_chunk(lost, helpers, helper_data, out);
    EXPECT_EQ(out, stripe[static_cast<size_t>(lost)]) << "lost=" << lost;
  }
}

TEST_P(RsCodeTest, RepairCoefficientsReproduceChunk) {
  const auto p = GetParam();
  const RsCode code(p.n, p.k, p.construction);
  const auto data = random_data(p.k, 96, 25);
  const auto stripe = encode_stripe(code, data);

  // Streaming decode as the testbed destination performs it: per-helper
  // mul-XOR with the published coefficients.
  std::vector<bool> available(static_cast<size_t>(p.n), true);
  const int lost = p.n - 1;
  available[static_cast<size_t>(lost)] = false;
  const auto helpers = code.repair_helpers(lost, available);
  const auto coeffs = code.repair_coefficients(lost, helpers);
  ASSERT_EQ(coeffs.size(), helpers.size());
  std::vector<uint8_t> acc(96, 0);
  for (size_t i = 0; i < helpers.size(); ++i) {
    gf::mul_region_xor(acc.data(),
                       stripe[static_cast<size_t>(helpers[i])].data(),
                       coeffs[i], acc.size());
  }
  EXPECT_EQ(acc, stripe[static_cast<size_t>(lost)]);
}

INSTANTIATE_TEST_SUITE_P(
    Codes, RsCodeTest,
    ::testing::Values(RsParam{3, 2, RsCode::Construction::kCauchy},
                      RsParam{5, 3, RsCode::Construction::kCauchy},
                      RsParam{9, 6, RsCode::Construction::kCauchy},
                      RsParam{14, 10, RsCode::Construction::kCauchy},
                      RsParam{16, 12, RsCode::Construction::kCauchy},
                      RsParam{5, 3, RsCode::Construction::kVandermonde},
                      RsParam{9, 6, RsCode::Construction::kVandermonde},
                      RsParam{16, 12, RsCode::Construction::kVandermonde}),
    [](const auto& info) {
      return "RS" + std::to_string(info.param.n) + "_" +
             std::to_string(info.param.k) +
             (info.param.construction == RsCode::Construction::kCauchy
                  ? "_cauchy"
                  : "_vand");
    });

TEST(RsCode, ExhaustiveErasurePatternsSmallCode) {
  // RS(6,4): check ALL erasure patterns of size <= 2 decode exactly.
  const RsCode code(6, 4);
  const auto data = random_data(4, 40, 31);
  const auto original = encode_stripe(code, data);
  for (int a = 0; a < 6; ++a) {
    for (int b = a; b < 6; ++b) {
      auto damaged = original;
      std::vector<int> erased = a == b ? std::vector<int>{a}
                                       : std::vector<int>{a, b};
      for (int e : erased) {
        std::fill(damaged[static_cast<size_t>(e)].begin(),
                  damaged[static_cast<size_t>(e)].end(), 0xFF);
      }
      std::vector<MutChunk> spans(damaged.begin(), damaged.end());
      ASSERT_TRUE(code.decode(erased, spans));
      EXPECT_EQ(damaged, original) << "a=" << a << " b=" << b;
    }
  }
}

TEST(RsCode, ConstructionsAgreeOnDataPath) {
  // Systematic codes keep data chunks identical regardless of
  // construction; parity differs but both decode.
  const auto data = random_data(4, 50, 33);
  const RsCode cauchy(7, 4, RsCode::Construction::kCauchy);
  const RsCode vand(7, 4, RsCode::Construction::kVandermonde);
  const auto s1 = encode_stripe(cauchy, data);
  const auto s2 = encode_stripe(vand, data);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(s1[static_cast<size_t>(i)], s2[static_cast<size_t>(i)]);
  }
}

TEST(RsCode, InvalidParametersRejected) {
  EXPECT_THROW(RsCode(4, 4), CheckFailure);
  EXPECT_THROW(RsCode(3, 0), CheckFailure);
  EXPECT_THROW(RsCode(300, 4), CheckFailure);
}

TEST(RsCode, RepairHelpersRequireKAvailable) {
  const RsCode code(5, 3);
  std::vector<bool> available = {false, true, true, false, false};
  EXPECT_THROW(code.repair_helpers(0, available), CheckFailure);
}

TEST(RsCode, NameFormat) {
  EXPECT_EQ(RsCode(9, 6).name(), "RS(9,6)");
}

}  // namespace
}  // namespace fastpr::ec
