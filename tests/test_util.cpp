// Utility substrate: stats, RNG helpers, token bucket timing, thread
// pool, table rendering, check macros.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"
#include "util/check.h"
#include "util/crc32c.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/token_bucket.h"
#include "util/units.h"

namespace fastpr {
namespace {

TEST(Check, ThrowsWithContext) {
  try {
    FASTPR_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
  }
}

TEST(Check, CarriesStructuredFields) {
  try {
    FASTPR_CHECK_MSG(2 + 2 == 5, "math " << "broke");
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_EQ(e.expression(), "2 + 2 == 5");
    EXPECT_NE(e.file().find("test_util.cpp"), std::string::npos);
    EXPECT_GT(e.line(), 0);
    EXPECT_EQ(e.message(), "math broke");
  }
}

TEST(Check, PlainCheckHasEmptyMessage) {
  try {
    FASTPR_CHECK(false);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_EQ(e.expression(), "false");
    EXPECT_TRUE(e.message().empty());
  }
}

TEST(Check, MessageExpressionIsLazy) {
  // The streamed message must not be evaluated when the check passes:
  // FASTPR_CHECK_MSG sits on hot paths and an eager message would turn
  // every call into a string build.
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("pricey");
  };
  FASTPR_CHECK_MSG(true, expensive());
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(FASTPR_CHECK_MSG(false, expensive()), CheckFailure);
  EXPECT_EQ(evaluations, 1);
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.stddev(), 1.1180, 1e-3);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 4.0);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), CheckFailure);
}

TEST(Summary, EmptyPercentileThrows) {
  Summary s;
  EXPECT_THROW(s.percentile(0.5), CheckFailure);
  // Once populated, the same call succeeds.
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 7.0);
}

TEST(Logging, SinkCapturesFormattedLines) {
  const LogLevel prior = log_level();
  set_log_level(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  LOG_WARN("sink test " << 42);
  LOG_DEBUG("below threshold, never reaches the sink");
  set_log_sink(nullptr);
  set_log_level(prior);
  LOG_WARN("after reset: back on stderr, not in `captured`");

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  const std::string& line = captured[0].second;
  EXPECT_NE(line.find("WARN"), std::string::npos);
  EXPECT_NE(line.find("sink test 42"), std::string::npos);
  // Monotonic offset ("+<seconds>") and thread id ("T<n>") per line.
  EXPECT_NE(line.find(" +"), std::string::npos);
  EXPECT_NE(line.find(" T"), std::string::npos);
}

TEST(Rng, SampleDistinctProperties) {
  Rng rng(1);
  const auto sample = rng.sample_distinct(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(Rng, SampleDistinctFullUniverse) {
  Rng rng(2);
  const auto sample = rng.sample_distinct(5, 5);
  std::set<int> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 5u);
  EXPECT_THROW(rng.sample_distinct(3, 4), CheckFailure);
}

TEST(Rng, UniformBoundsInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Units, Conversions) {
  EXPECT_EQ(MB(64), 64 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(MBps(100), 100.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(Gbps(1), 1e9 / 8);
}

TEST(TokenBucket, UnlimitedNeverBlocks) {
  TokenBucket bucket(0);  // unlimited
  const auto start = std::chrono::steady_clock::now();
  bucket.acquire(100'000'000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 0.05);
}

TEST(TokenBucket, RateApproximatelyEnforced) {
  // 10 MB/s with a 64 KiB burst: acquiring 2 MB beyond the burst should
  // take roughly 0.2 s.
  TokenBucket bucket(10e6, 64 << 10);
  bucket.acquire(64 << 10);  // drain the initial burst
  const auto start = std::chrono::steady_clock::now();
  bucket.acquire(2'000'000);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GT(secs, 0.12);
  EXPECT_LT(secs, 0.6);
}

TEST(TokenBucket, SetRateUnblocksWaiters) {
  TokenBucket bucket(1.0, 16);  // 1 byte/s: effectively frozen
  bucket.acquire(16);
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    bucket.acquire(1'000'000);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(done.load());
  bucket.set_rate(0);  // unlimited
  waiter.join();
  EXPECT_TRUE(done.load());
}

TEST(TokenBucket, FifoCompletionOrderUnderContention) {
  // Freeze the bucket, queue four burst-sized acquirers with staggered
  // arrivals, then open the tap: the FIFO ticket lock must complete
  // them strictly in arrival order — a later waiter can never overtake
  // an earlier one on a lucky wakeup.
  TokenBucket bucket(1.0, 1024);  // 1 byte/s: effectively frozen
  bucket.acquire(1024);           // drain the initial burst
  Mutex order_mutex{lock_order::kUtilLogging};
  std::vector<int> completions;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      bucket.acquire(1024);
      MutexLock lock(order_mutex);
      completions.push_back(i);
    });
    // Stagger arrivals so ticket order matches thread index.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  bucket.set_rate(200'000);  // ~5 ms per queued slice
  for (auto& t : threads) t.join();
  EXPECT_EQ(completions, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TokenBucket, LargeAcquireNotStarvedBySmallStream) {
  // One 64 KiB acquirer races a stream of 4 KiB acquirers on a shared
  // bucket. Slicing + FIFO tickets interleave them, so the large
  // request finishes in bounded time instead of waiting for the stream
  // to dry up.
  TokenBucket bucket(MBps(2), 4 << 10);
  bucket.acquire(4 << 10);  // drain the burst so everyone queues
  std::atomic<bool> large_done{false};
  std::thread large([&] {
    bucket.acquire(64 << 10);
    large_done.store(true);
  });
  std::thread small([&] {
    // More small bytes than the large request; without fairness these
    // could starve it indefinitely.
    for (int i = 0; i < 64 && !large_done.load(); ++i) {
      bucket.acquire(4 << 10);
    }
  });
  large.join();
  small.join();
  EXPECT_TRUE(large_done.load());
}

TEST(TokenBucket, BlockedAcquireRecordsWaitHistogram) {
  auto& h =
      telemetry::MetricsRegistry::global().histogram("tokenbucket.wait_ns");
  const auto before = h.snapshot();
  TokenBucket bucket(MBps(10), 16 << 10);
  bucket.acquire(16 << 10);  // drain the burst
  bucket.acquire(256 << 10);  // ~25 ms of shaping — must block
  const auto after = h.snapshot();
#if FASTPR_TELEMETRY_ENABLED
  EXPECT_GT(after.count, before.count);
  EXPECT_GT(after.sum, before.sum);
#else
  EXPECT_EQ(after.count, before.count);
#endif
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1);
      return i * 2;
    }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * 2);
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 3), "2.000");
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 / common test vectors for CRC-32C.
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32c(std::span<const uint8_t>(digits, 9)), 0xE3069283u);
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  std::vector<uint8_t> ffs(32, 0xFF);
  EXPECT_EQ(crc32c(ffs), 0x62A8AB43u);
  EXPECT_EQ(crc32c(std::span<const uint8_t>()), 0u);
}

TEST(Crc32c, StreamingMatchesOneShot) {
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  const uint32_t whole = crc32c(data);
  uint32_t chained = 0;
  for (size_t off = 0; off < data.size(); off += 137) {
    const size_t len = std::min<size_t>(137, data.size() - off);
    chained = crc32c(std::span<const uint8_t>(data.data() + off, len),
                     chained);
  }
  EXPECT_EQ(chained, whole);
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(4096, 0x5A);
  const uint32_t good = crc32c(data);
  for (size_t i : {size_t{0}, size_t{17}, size_t{4095}}) {
    auto bad = data;
    bad[i] ^= 0x01;
    EXPECT_NE(crc32c(bad), good) << "flip at " << i;
  }
}

}  // namespace
}  // namespace fastpr
