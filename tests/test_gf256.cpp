// GF(2^8) arithmetic: field axioms, table consistency, region kernels.
#include "gf/gf256.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "util/check.h"

namespace fastpr::gf {
namespace {

TEST(Gf256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(mul(1, static_cast<uint8_t>(a)), a);
    EXPECT_EQ(mul(static_cast<uint8_t>(a), 0), 0);
    EXPECT_EQ(mul(0, static_cast<uint8_t>(a)), 0);
  }
}

TEST(Gf256, MulCommutative) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 5000; ++trial) {
    const uint8_t a = static_cast<uint8_t>(rng());
    const uint8_t b = static_cast<uint8_t>(rng());
    EXPECT_EQ(mul(a, b), mul(b, a));
  }
}

TEST(Gf256, MulAssociative) {
  std::mt19937 rng(43);
  for (int trial = 0; trial < 5000; ++trial) {
    const uint8_t a = static_cast<uint8_t>(rng());
    const uint8_t b = static_cast<uint8_t>(rng());
    const uint8_t c = static_cast<uint8_t>(rng());
    EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
  }
}

TEST(Gf256, DistributesOverXor) {
  // a*(b^c) == a*b ^ a*c — addition in GF(2^8) is XOR.
  std::mt19937 rng(44);
  for (int trial = 0; trial < 5000; ++trial) {
    const uint8_t a = static_cast<uint8_t>(rng());
    const uint8_t b = static_cast<uint8_t>(rng());
    const uint8_t c = static_cast<uint8_t>(rng());
    EXPECT_EQ(mul(a, b ^ c), mul(a, b) ^ mul(a, c));
  }
}

TEST(Gf256, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    const uint8_t ai = inv(static_cast<uint8_t>(a));
    EXPECT_EQ(mul(static_cast<uint8_t>(a), ai), 1) << "a=" << a;
  }
}

TEST(Gf256, DivMatchesMulByInverse) {
  std::mt19937 rng(45);
  for (int trial = 0; trial < 5000; ++trial) {
    const uint8_t a = static_cast<uint8_t>(rng());
    const uint8_t b = static_cast<uint8_t>(rng() | 1);  // nonzero-ish
    if (b == 0) continue;
    EXPECT_EQ(div(a, b), mul(a, inv(b)));
  }
}

TEST(Gf256, DivByZeroThrows) {
  EXPECT_THROW(div(5, 0), CheckFailure);
  EXPECT_THROW(inv(0), CheckFailure);
  EXPECT_THROW(log(0), CheckFailure);
}

TEST(Gf256, ExpLogRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(exp(log(static_cast<uint8_t>(a))), a);
  }
  // alpha = 2 is a generator: powers enumerate all nonzero elements.
  std::vector<bool> seen(256, false);
  for (unsigned e = 0; e < 255; ++e) {
    const uint8_t v = exp(e);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "exp not injective at e=" << e;
    seen[v] = true;
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  std::mt19937 rng(46);
  for (int trial = 0; trial < 500; ++trial) {
    const uint8_t a = static_cast<uint8_t>(rng());
    const unsigned e = rng() % 20;
    uint8_t expected = 1;
    for (unsigned i = 0; i < e; ++i) expected = mul(expected, a);
    EXPECT_EQ(pow(a, e), expected) << "a=" << int(a) << " e=" << e;
  }
}

TEST(Gf256, PowZeroExponent) {
  EXPECT_EQ(pow(0, 0), 1);  // 0^0 == 1 by convention (Vandermonde row 0)
  EXPECT_EQ(pow(0, 5), 0);
  EXPECT_EQ(pow(7, 0), 1);
}

class RegionOpTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RegionOpTest, MulRegionXorMatchesScalar) {
  const size_t len = GetParam();
  std::mt19937 rng(100 + len);
  std::vector<uint8_t> src(len), dst(len), expected(len);
  for (size_t i = 0; i < len; ++i) {
    src[i] = static_cast<uint8_t>(rng());
    dst[i] = static_cast<uint8_t>(rng());
  }
  for (int c : {0, 1, 2, 37, 255}) {
    auto d = dst;
    for (size_t i = 0; i < len; ++i) {
      expected[i] = d[i] ^ mul(static_cast<uint8_t>(c), src[i]);
    }
    mul_region_xor(d.data(), src.data(), static_cast<uint8_t>(c), len);
    EXPECT_EQ(d, expected) << "c=" << c << " len=" << len;
  }
}

TEST_P(RegionOpTest, MulRegionMatchesScalar) {
  const size_t len = GetParam();
  std::mt19937 rng(200 + len);
  std::vector<uint8_t> src(len), dst(len, 0xAA), expected(len);
  for (size_t i = 0; i < len; ++i) src[i] = static_cast<uint8_t>(rng());
  for (int c : {0, 1, 3, 129}) {
    auto d = dst;
    for (size_t i = 0; i < len; ++i) {
      expected[i] = mul(static_cast<uint8_t>(c), src[i]);
    }
    mul_region(d.data(), src.data(), static_cast<uint8_t>(c), len);
    EXPECT_EQ(d, expected) << "c=" << c;
  }
}

TEST_P(RegionOpTest, XorRegionWordAndTail) {
  const size_t len = GetParam();
  std::mt19937 rng(300 + len);
  std::vector<uint8_t> src(len), dst(len), expected(len);
  for (size_t i = 0; i < len; ++i) {
    src[i] = static_cast<uint8_t>(rng());
    dst[i] = static_cast<uint8_t>(rng());
    expected[i] = dst[i] ^ src[i];
  }
  xor_region(dst.data(), src.data(), len);
  EXPECT_EQ(dst, expected);
}

// Lengths chosen to hit the 8-byte word loop, its tail, and empty input.
INSTANTIATE_TEST_SUITE_P(Lengths, RegionOpTest,
                         ::testing::Values(0, 1, 7, 8, 9, 63, 64, 65, 1000));

TEST(Gf256, SpanOverloadsCheckSizes) {
  std::vector<uint8_t> a(8), b(9);
  EXPECT_THROW(mul_region_xor(std::span<uint8_t>(a),
                              std::span<const uint8_t>(b), 3),
               CheckFailure);
}

}  // namespace
}  // namespace fastpr::gf
