// Coordinator retry helper-selection: fallback_for / pick_sources under
// RS and LRC, including the failed-node exclusions used by the retry
// machinery (DESIGN.md §7).
#include "agent/coordinator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/stripe_layout.h"
#include "ec/lrc_code.h"
#include "ec/rs_code.h"
#include "net/inproc_transport.h"
#include "util/check.h"
#include "util/units.h"

namespace fastpr::agent {
namespace {

using cluster::ChunkRef;
using cluster::NodeId;

CoordinatorOptions selection_options() {
  CoordinatorOptions opts;
  opts.chunk_bytes = 64 * kKiB;
  opts.packet_bytes = 16 * kKiB;
  return opts;
}

std::set<NodeId> source_nodes(const std::vector<core::SourceRead>& sources) {
  std::set<NodeId> nodes;
  for (const auto& s : sources) nodes.insert(s.node);
  return nodes;
}

// LRC(4,2,2) with identity placement: chunk index i of stripe 0 lives on
// node i. Groups: data {0,1} + local parity 4, data {2,3} + local
// parity 5, global parities 6 and 7. Nodes 8..11 are chunk-free
// destinations; node 12 is the coordinator.
class LrcSelectionTest : public ::testing::Test {
 protected:
  LrcSelectionTest()
      : code_(4, 2, 2),
        layout_(12, 8),
        transport_(13, {}),
        coordinator_(12, transport_, code_, layout_, selection_options()) {
    layout_.add_stripe({0, 1, 2, 3, 4, 5, 6, 7});
  }

  ec::LrcCode code_;
  cluster::StripeLayout layout_;
  net::InprocTransport transport_;
  Coordinator coordinator_;
};

TEST_F(LrcSelectionTest, PickSourcesStaysInLocalGroupWhenIntact) {
  // Chunk 0's local group is {1, 4}: a healthy group means a k' = 2
  // helper read, not a k = 4 one.
  const auto sources =
      coordinator_.pick_sources(ChunkRef{0, 0}, /*dst=*/8, /*stf=*/0, {});
  EXPECT_EQ(source_nodes(sources), (std::set<NodeId>{1, 4}));
  for (const auto& s : sources) {
    EXPECT_EQ(s.chunk.stripe, 0);
    EXPECT_EQ(s.chunk.index, s.node);  // identity placement
  }
}

TEST_F(LrcSelectionTest, PickSourcesFallsBackToGlobalParities) {
  // The local parity's node (4) is known-failed, so the local-group
  // repair is impossible and selection must widen to a global solve.
  const auto sources = coordinator_.pick_sources(ChunkRef{0, 0}, /*dst=*/8,
                                                 /*stf=*/0, {4});
  const auto nodes = source_nodes(sources);
  EXPECT_GE(nodes.size(), 2u);
  EXPECT_EQ(nodes.count(0), 0u);  // never the STF node
  EXPECT_EQ(nodes.count(4), 0u);  // never an excluded node
  EXPECT_EQ(nodes.count(8), 0u);  // never the destination
  // Chunk 0 only appears in the global-parity rows once its local
  // parity is gone, so any viable solve must read a global parity.
  EXPECT_TRUE(nodes.count(6) != 0 || nodes.count(7) != 0);
}

TEST_F(LrcSelectionTest, FallbackForExcludesKnownFailedNodes) {
  core::MigrationTask mig;
  mig.chunk = ChunkRef{0, 0};
  mig.src = 0;
  mig.dst = 8;
  // Node 1 (the data half of chunk 0's local group) failed earlier in
  // this execution: the fallback reconstruction must avoid it too.
  const auto recon = coordinator_.fallback_for(mig, /*stf=*/0, {1});
  EXPECT_EQ(recon.chunk, mig.chunk);
  EXPECT_EQ(recon.dst, mig.dst);
  const auto nodes = source_nodes(recon.sources);
  EXPECT_EQ(nodes.count(0), 0u);
  EXPECT_EQ(nodes.count(1), 0u);
  EXPECT_GE(nodes.size(), 2u);
}

TEST_F(LrcSelectionTest, PickSourcesThrowsWhenStripeIsDepleted) {
  // Only the two global parities survive: rank 2 < k = 4, so chunk 0 is
  // unrepairable and selection must say so (the coordinator abandons
  // the chunk and reports it unrepaired).
  EXPECT_THROW(coordinator_.pick_sources(ChunkRef{0, 0}, /*dst=*/8,
                                         /*stf=*/0, {1, 2, 3, 4, 5}),
               CheckFailure);
}

// RS(6,4) with identity placement on nodes 0..5.
class RsSelectionTest : public ::testing::Test {
 protected:
  RsSelectionTest()
      : code_(6, 4),
        layout_(10, 6),
        transport_(11, {}),
        coordinator_(10, transport_, code_, layout_, selection_options()) {
    layout_.add_stripe({0, 1, 2, 3, 4, 5});
  }

  ec::RsCode code_;
  cluster::StripeLayout layout_;
  net::InprocTransport transport_;
  Coordinator coordinator_;
};

TEST_F(RsSelectionTest, FallbackForUsesExactlyTheSurvivors) {
  core::MigrationTask mig;
  mig.chunk = ChunkRef{0, 0};
  mig.src = 0;
  mig.dst = 8;
  const auto recon = coordinator_.fallback_for(mig, /*stf=*/0, {1});
  // k = 4 helpers from the 4 surviving stripe nodes {2, 3, 4, 5}.
  EXPECT_EQ(source_nodes(recon.sources), (std::set<NodeId>{2, 3, 4, 5}));
}

TEST_F(RsSelectionTest, FallbackForThrowsWhenSurvivorsDropBelowK) {
  core::MigrationTask mig;
  mig.chunk = ChunkRef{0, 0};
  mig.src = 0;
  mig.dst = 8;
  EXPECT_THROW(coordinator_.fallback_for(mig, /*stf=*/0, {1, 2}),
               CheckFailure);
}

}  // namespace
}  // namespace fastpr::agent
