// GF(2^8) matrix algebra: inversion, rank, the MDS-enabling properties
// of Vandermonde and Cauchy constructions.
#include "ec/matrix.h"

#include <gtest/gtest.h>

#include <random>

#include "gf/gf256.h"
#include "util/check.h"

namespace fastpr::ec {
namespace {

Matrix random_matrix(int order, std::mt19937& rng) {
  Matrix m(order, order);
  for (int r = 0; r < order; ++r) {
    for (int c = 0; c < order; ++c) {
      m.at(r, c) = static_cast<uint8_t>(rng());
    }
  }
  return m;
}

TEST(Matrix, IdentityInvertsToItself) {
  const Matrix id = Matrix::identity(5);
  const auto inv = id.inverted();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(*inv, id);
}

class MatrixInverseTest : public ::testing::TestWithParam<int> {};

TEST_P(MatrixInverseTest, InverseRoundTrip) {
  const int order = GetParam();
  std::mt19937 rng(77 + order);
  int inverted_count = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix m = random_matrix(order, rng);
    const auto inv = m.inverted();
    if (!inv.has_value()) {
      EXPECT_LT(m.rank(), order);  // singularity agrees with rank
      continue;
    }
    ++inverted_count;
    EXPECT_EQ(m.mul(*inv), Matrix::identity(order));
    EXPECT_EQ(inv->mul(m), Matrix::identity(order));
    EXPECT_EQ(m.rank(), order);
  }
  // Random matrices over GF(256) are invertible with probability ~0.996.
  EXPECT_GT(inverted_count, 40);
}

INSTANTIATE_TEST_SUITE_P(Orders, MatrixInverseTest,
                         ::testing::Values(1, 2, 3, 6, 10, 16));

TEST(Matrix, SingularDetected) {
  Matrix m(2, 2, {1, 2, 1, 2});  // duplicate rows
  EXPECT_FALSE(m.inverted().has_value());
  EXPECT_EQ(m.rank(), 1);
}

TEST(Matrix, ZeroMatrixRank) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rank(), 0);
}

TEST(Matrix, MulDimensionsChecked) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.mul(b), CheckFailure);
}

TEST(Matrix, VandermondeAnyKRowsInvertible) {
  // Every k-subset of rows of an n×k Vandermonde (distinct evaluation
  // points) must be invertible — this is what makes column-reduced
  // Vandermonde a valid RS generator.
  const int n = 10, k = 4;
  const Matrix v = Matrix::vandermonde(n, k);
  std::mt19937 rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> rows(n);
    for (int i = 0; i < n; ++i) rows[i] = i;
    std::shuffle(rows.begin(), rows.end(), rng);
    rows.resize(k);
    EXPECT_TRUE(v.select_rows(rows).inverted().has_value());
  }
}

TEST(Matrix, CauchyEverySquareSubmatrixInvertible) {
  const int rows = 4, cols = 6;
  const Matrix c = Matrix::cauchy(rows, cols);
  // All 2x2 submatrices (exhaustive).
  for (int r1 = 0; r1 < rows; ++r1) {
    for (int r2 = r1 + 1; r2 < rows; ++r2) {
      for (int c1 = 0; c1 < cols; ++c1) {
        for (int c2 = c1 + 1; c2 < cols; ++c2) {
          Matrix sub(2, 2, {c.at(r1, c1), c.at(r1, c2), c.at(r2, c1),
                            c.at(r2, c2)});
          EXPECT_TRUE(sub.inverted().has_value())
              << r1 << "," << r2 << "/" << c1 << "," << c2;
        }
      }
    }
  }
}

TEST(Matrix, CauchyEntriesNonzero) {
  const Matrix c = Matrix::cauchy(8, 8);
  for (int r = 0; r < 8; ++r) {
    for (int col = 0; col < 8; ++col) EXPECT_NE(c.at(r, col), 0);
  }
}

TEST(Matrix, SelectRowsPreservesContent) {
  Matrix m(3, 2, {1, 2, 3, 4, 5, 6});
  const Matrix s = m.select_rows({2, 0});
  EXPECT_EQ(s.at(0, 0), 5);
  EXPECT_EQ(s.at(0, 1), 6);
  EXPECT_EQ(s.at(1, 0), 1);
}

TEST(Matrix, ColumnOperationsPreserveRank) {
  std::mt19937 rng(9);
  Matrix m = random_matrix(6, rng);
  const int before = m.rank();
  m.swap_cols(0, 3);
  m.scale_col(1, 7);
  m.add_scaled_col(2, 4, 19);
  EXPECT_EQ(m.rank(), before);
}

TEST(Matrix, ScaleColRejectsZero) {
  Matrix m = Matrix::identity(2);
  EXPECT_THROW(m.scale_col(0, 0), CheckFailure);
}

}  // namespace
}  // namespace fastpr::ec
