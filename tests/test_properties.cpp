// Property suite for Algorithm 1 and §IV-A placement (DESIGN.md §9),
// swept over seeded random clusters:
//
//  * every reconstruction set — single-STF and multi-STF — admits a
//    saturating helper matching per the EXPONENTIAL oracle
//    (matching/brute_force), independent of the incremental matcher
//    the planner uses;
//  * every set is maximal: no chunk from a later set could have been
//    added (unless the set already sits at the configured cap);
//  * no plan ever lands two chunks of one stripe on the same node,
//    across rounds and batch members (§IV-A, DESIGN.md §9.3).
//
// The seed window comes from FASTPR_PROPERTY_SEED_BASE/_COUNT (nightly
// CI widens it); every assertion carries the reproducing seed via
// SCOPED_TRACE. Cluster sizes are chosen so oracle instances stay
// within brute force's 14-right-vertex limit: k' = 3 bounds a set's
// helper slots at 6, and a grown set (maximality probe) at 9.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster_state.h"
#include "cluster/stripe_layout.h"
#include "core/multi_stf.h"
#include "core/recon_sets.h"
#include "core/repair_plan.h"
#include "matching/brute_force.h"
#include "net/topology.h"
#include "util/rng.h"
#include "util/units.h"

namespace fastpr {
namespace {

using cluster::ChunkRef;
using cluster::NodeId;

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

uint64_t seed_base() { return env_u64("FASTPR_PROPERTY_SEED_BASE", 1); }
int seed_count() {
  return static_cast<int>(env_u64("FASTPR_PROPERTY_SEED_COUNT", 6));
}

/// The `count` most-loaded storage nodes, ties to lower id — the same
/// pick Testbed::flag_stf_batch and sim::run_multi_experiment make.
std::vector<NodeId> most_loaded(const cluster::StripeLayout& layout,
                                int count) {
  std::vector<NodeId> nodes;
  for (NodeId node = 0; node < layout.num_nodes(); ++node) {
    nodes.push_back(node);
  }
  std::stable_sort(nodes.begin(), nodes.end(),
                   [&layout](NodeId a, NodeId b) {
                     return layout.load(a) > layout.load(b);
                   });
  nodes.resize(static_cast<size_t>(count));
  return nodes;
}

std::vector<NodeId> healthy_except(int num_nodes,
                                   const std::vector<NodeId>& excluded) {
  std::vector<NodeId> healthy;
  for (NodeId node = 0; node < num_nodes; ++node) {
    bool out = false;
    for (NodeId e : excluded) out = out || e == node;
    if (!out) healthy.push_back(node);
  }
  return healthy;
}

/// Exact feasibility oracle: k'·|set| helper reads admit a saturating
/// matching onto the healthy nodes, each node serving at most
/// `reads_per_node` (capacity modeled by duplicating left vertices).
/// Every helper candidate of a set chunk is a healthy node holding a
/// surviving chunk of its stripe.
bool oracle_feasible(const cluster::StripeLayout& layout,
                     const std::vector<NodeId>& healthy, int k_repair,
                     int reads_per_node, const std::vector<ChunkRef>& set) {
  matching::BipartiteGraph graph;
  graph.left_count = static_cast<int>(healthy.size()) * reads_per_node;
  int slots = 0;
  for (ChunkRef chunk : set) {
    std::vector<int> adjacency;
    for (size_t i = 0; i < healthy.size(); ++i) {
      if (!layout.stripe_uses_node(chunk.stripe, healthy[i])) continue;
      for (int copy = 0; copy < reads_per_node; ++copy) {
        adjacency.push_back(static_cast<int>(i) * reads_per_node + copy);
      }
    }
    for (int slot = 0; slot < k_repair; ++slot) {
      graph.add_right_vertex(adjacency);
      ++slots;
    }
  }
  return matching::brute_force_max_matching(graph) == slots;
}

/// Checks every set feasible, and maximal with respect to the chunks
/// Algorithm 1 had still available when the set was formed (the chunks
/// of all LATER sets). A set at the explicit `cap` is maximal by cap.
void expect_feasible_and_maximal(
    const cluster::StripeLayout& layout, const std::vector<NodeId>& healthy,
    int k_repair, int reads_per_node, int cap,
    const std::vector<std::vector<ChunkRef>>& sets) {
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_TRUE(
        oracle_feasible(layout, healthy, k_repair, reads_per_node, sets[i]))
        << "set " << i << " is not a valid reconstruction set";
    if (cap > 0 && static_cast<int>(sets[i].size()) >= cap) continue;
    for (size_t j = i + 1; j < sets.size(); ++j) {
      for (ChunkRef chunk : sets[j]) {
        std::vector<ChunkRef> grown = sets[i];
        grown.push_back(chunk);
        EXPECT_FALSE(oracle_feasible(layout, healthy, k_repair,
                                     reads_per_node, grown))
            << "set " << i << " is not maximal: chunk (" << chunk.stripe
            << "," << chunk.index << ") from set " << j << " still fits";
      }
    }
  }
}

/// Flattens the sets and checks they cover `expected` exactly.
void expect_exact_cover(const std::vector<std::vector<ChunkRef>>& sets,
                        const std::vector<ChunkRef>& expected) {
  std::set<std::pair<int, int>> covered;
  for (const auto& set : sets) {
    for (ChunkRef chunk : set) {
      EXPECT_TRUE(covered.emplace(chunk.stripe, chunk.index).second)
          << "chunk (" << chunk.stripe << "," << chunk.index
          << ") appears in two sets";
    }
  }
  std::set<std::pair<int, int>> want;
  for (ChunkRef chunk : expected) want.emplace(chunk.stripe, chunk.index);
  EXPECT_EQ(covered, want);
}

TEST(AlgorithmOneProperties, SingleStfSetsFeasibleAndMaximal) {
  for (int s = 0; s < seed_count(); ++s) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(s);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (override with FASTPR_PROPERTY_SEED_BASE)");
    Rng rng(seed);
    const auto layout = cluster::StripeLayout::random(
        /*num_nodes=*/8, /*chunks_per_stripe=*/5, /*num_stripes=*/20, rng);
    const NodeId stf = most_loaded(layout, 1).front();
    const auto healthy = healthy_except(8, {stf});
    const int k_repair = 3;

    const auto sets = core::find_reconstruction_sets(layout, stf, healthy,
                                                     k_repair);
    expect_exact_cover(sets, layout.chunks_on(stf));
    for (const auto& set : sets) {
      EXPECT_TRUE(core::is_valid_reconstruction_set(layout, stf, healthy,
                                                    k_repair, set));
    }
    expect_feasible_and_maximal(layout, healthy, k_repair,
                                /*reads_per_node=*/1, /*cap=*/0, sets);
  }
}

TEST(AlgorithmOneProperties, MultiStfUnionSetsFeasibleAndMaximal) {
  for (int s = 0; s < seed_count(); ++s) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(s);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (override with FASTPR_PROPERTY_SEED_BASE)");
    Rng rng(seed);
    const auto layout = cluster::StripeLayout::random(
        /*num_nodes=*/10, /*chunks_per_stripe=*/5, /*num_stripes=*/20, rng);
    const auto batch = most_loaded(layout, 2);
    const auto healthy = healthy_except(10, batch);
    const int k_repair = 3;

    // Union of the batch's chunks, member order — what the joint
    // planner feeds Algorithm 1. Stripes the batch itself starved below
    // k' healthy helpers are the planner's forced migrations, not
    // Algorithm-1 input.
    std::vector<ChunkRef> union_chunks;
    for (NodeId member : batch) {
      for (ChunkRef chunk : layout.chunks_on(member)) {
        int helpers = 0;
        for (NodeId node : healthy) {
          helpers += layout.stripe_uses_node(chunk.stripe, node) ? 1 : 0;
        }
        if (helpers >= k_repair) union_chunks.push_back(chunk);
      }
    }

    const auto sets = core::find_reconstruction_sets_for(
        union_chunks, layout, healthy, k_repair);
    expect_exact_cover(sets, union_chunks);
    expect_feasible_and_maximal(layout, healthy, k_repair,
                                /*reads_per_node=*/1, /*cap=*/0, sets);
  }
}

TEST(AlgorithmOneProperties, HelperCapacityTwoSetsFeasibleAndMaximal) {
  // DESIGN.md §8: the multi-STF planner may relax helper_reads_per_node.
  // The oracle models capacity 2 by duplicating every healthy node.
  for (int s = 0; s < seed_count(); ++s) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(s);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (override with FASTPR_PROPERTY_SEED_BASE)");
    Rng rng(seed);
    const auto layout = cluster::StripeLayout::random(
        /*num_nodes=*/8, /*chunks_per_stripe=*/5, /*num_stripes=*/20, rng);
    const NodeId stf = most_loaded(layout, 1).front();
    const auto healthy = healthy_except(8, {stf});
    const int k_repair = 3;

    core::ReconSetOptions options;
    options.helper_reads_per_node = 2;
    // Capacity 2 lifts the natural bound past what brute force can
    // verify; cap sets at 2 so a maximality probe stays at 9 slots.
    options.max_set_size = 2;
    const auto sets = core::find_reconstruction_sets(layout, stf, healthy,
                                                     k_repair, options);
    expect_exact_cover(sets, layout.chunks_on(stf));
    for (const auto& set : sets) {
      EXPECT_TRUE(core::is_valid_reconstruction_set(
          layout, stf, healthy, k_repair, set, /*code=*/nullptr,
          /*helper_reads_per_node=*/2));
    }
    expect_feasible_and_maximal(layout, healthy, k_repair,
                                /*reads_per_node=*/2, /*cap=*/2, sets);
  }
}

TEST(AlgorithmOneProperties, RackAwareSetsFeasibleAndMaximal) {
  // Rack-interleaved adjacency (ReconSetOptions.topology, DESIGN.md
  // §11) is pure preference: it reorders each chunk's helper
  // candidates but never removes one, so Algorithm 1's output must
  // stay feasible and maximal per the exponential oracle.
  for (int s = 0; s < seed_count(); ++s) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(s);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (override with FASTPR_PROPERTY_SEED_BASE)");
    Rng rng(seed);
    const auto layout = cluster::StripeLayout::random_racked(
        /*num_nodes=*/10, /*chunks_per_stripe=*/5, /*num_stripes=*/20,
        /*nodes_per_rack=*/2, rng);
    const NodeId stf = most_loaded(layout, 1).front();
    const auto healthy = healthy_except(10, {stf});
    const int k_repair = 3;
    const net::Topology topo(5, 2, net::Oversub(4.0));

    core::ReconSetOptions options;
    options.topology = &topo;
    const auto sets = core::find_reconstruction_sets(layout, stf, healthy,
                                                     k_repair, options);
    expect_exact_cover(sets, layout.chunks_on(stf));
    for (const auto& set : sets) {
      EXPECT_TRUE(core::is_valid_reconstruction_set(layout, stf, healthy,
                                                    k_repair, set));
    }
    expect_feasible_and_maximal(layout, healthy, k_repair,
                                /*reads_per_node=*/1, /*cap=*/0, sets);
  }
}

TEST(AlgorithmOneProperties, DeprioritizedSetsFeasibleAndMaximal) {
  // Deprioritized helpers (bandwidth-replan stragglers) are ordered
  // LAST in every adjacency, never excluded — same guarantee: the sets
  // keep the exact cover, feasibility, and maximality.
  for (int s = 0; s < seed_count(); ++s) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(s);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (override with FASTPR_PROPERTY_SEED_BASE)");
    Rng rng(seed);
    const auto layout = cluster::StripeLayout::random(
        /*num_nodes=*/8, /*chunks_per_stripe=*/5, /*num_stripes=*/20, rng);
    const NodeId stf = most_loaded(layout, 1).front();
    const auto healthy = healthy_except(8, {stf});
    const int k_repair = 3;

    core::ReconSetOptions options;
    options.deprioritized = {healthy[0], healthy[1]};
    const auto sets = core::find_reconstruction_sets(layout, stf, healthy,
                                                     k_repair, options);
    expect_exact_cover(sets, layout.chunks_on(stf));
    expect_feasible_and_maximal(layout, healthy, k_repair,
                                /*reads_per_node=*/1, /*cap=*/0, sets);
  }
}

/// §IV-A across the whole plan: destinations legal, never two repaired
/// chunks of one stripe on one node, sources and destinations never
/// batch members, migrations read from the member that owns the chunk.
void expect_placement_invariants(const core::RepairPlan& plan,
                                 const cluster::StripeLayout& layout,
                                 const std::vector<NodeId>& batch,
                                 core::Scenario scenario, int num_storage,
                                 int num_standby) {
  std::set<NodeId> batch_set(batch.begin(), batch.end());
  std::set<std::pair<int, NodeId>> stripe_dst;  // (stripe, destination)
  int covered = 0;
  const auto check_dst = [&](ChunkRef chunk, NodeId dst) {
    EXPECT_EQ(batch_set.count(dst), 0u) << "destination is a batch member";
    EXPECT_TRUE(stripe_dst.emplace(chunk.stripe, dst).second)
        << "two repaired chunks of stripe " << chunk.stripe << " on node "
        << dst;
    if (scenario == core::Scenario::kScattered) {
      EXPECT_LT(dst, num_storage);
      EXPECT_FALSE(layout.stripe_uses_node(chunk.stripe, dst))
          << "destination already holds a chunk of stripe " << chunk.stripe;
    } else {
      EXPECT_GE(dst, num_storage);
      EXPECT_LT(dst, num_storage + num_standby);
    }
  };
  for (const auto& round : plan.rounds) {
    for (const auto& task : round.migrations) {
      EXPECT_EQ(task.src, layout.node_of(task.chunk))
          << "migration does not read from the owning member disk";
      EXPECT_EQ(batch_set.count(task.src), 1u);
      check_dst(task.chunk, task.dst);
      ++covered;
    }
    for (const auto& task : round.reconstructions) {
      check_dst(task.chunk, task.dst);
      for (const auto& read : task.sources) {
        EXPECT_EQ(batch_set.count(read.node), 0u)
            << "helper read from a batch member";
        EXPECT_TRUE(layout.stripe_uses_node(task.chunk.stripe, read.node));
      }
      ++covered;
    }
  }
  int expected = 0;
  for (NodeId member : batch) expected += layout.load(member);
  EXPECT_EQ(covered, expected) << "plan does not cover the batch's chunks";
}

class PlacementPropertyTest
    : public ::testing::TestWithParam<core::Scenario> {};

TEST_P(PlacementPropertyTest, PlanNeverColocatesStripeChunks) {
  const core::Scenario scenario = GetParam();
  for (int s = 0; s < seed_count(); ++s) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(s);
    for (int batch_size = 1; batch_size <= 3; ++batch_size) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " batch=" +
                   std::to_string(batch_size) +
                   " (override with FASTPR_PROPERTY_SEED_BASE)");
      Rng rng(seed);
      // n=6, k'=4 with batches up to 3: a stripe losing 3 chunks to the
      // batch keeps only 3 < k' helpers, so the forced-migration path
      // (DESIGN.md §8) is exercised, not just the matched one.
      const int num_storage = 12;
      auto layout = cluster::StripeLayout::random(
          num_storage, /*chunks_per_stripe=*/6, /*num_stripes=*/30, rng);
      cluster::ClusterState state(
          num_storage, /*num_hot_standby=*/3,
          cluster::BandwidthProfile{MBps(100), Gbps(1)});
      const auto batch = most_loaded(layout, batch_size);
      for (NodeId member : batch) {
        state.set_health(member, cluster::NodeHealth::kSoonToFail);
      }
      core::PlannerOptions options;
      options.scenario = scenario;
      options.k_repair = 4;
      options.chunk_bytes = static_cast<double>(MB(4));
      core::MultiStfPlanner planner(layout, state, options);
      for (const auto& plan :
           {planner.plan_fastpr(), planner.plan_sequential()}) {
        core::validate_plan(plan, layout, state, options.k_repair);
        expect_placement_invariants(plan, layout, batch, scenario,
                                    num_storage, /*num_standby=*/3);
      }
    }
  }
}

/// Independent failure-domain check (DESIGN.md §11), deliberately NOT
/// via validate_plan: applies the plan's destinations to the layout and
/// asserts no rack ends up with two chunks of one stripe. Hot-standby
/// spares (ids >= num_storage) are exempt — dedicated overflow rack.
void expect_rack_disjoint_after_plan(const core::RepairPlan& plan,
                                     const cluster::StripeLayout& layout,
                                     const std::vector<NodeId>& batch,
                                     const net::Topology& topo,
                                     int num_storage) {
  const std::set<NodeId> batch_set(batch.begin(), batch.end());
  std::map<std::pair<int, int>, NodeId> dst;  // (stripe, index) -> dest
  for (const auto& round : plan.rounds) {
    for (const auto& task : round.migrations) {
      dst[{task.chunk.stripe, task.chunk.index}] = task.dst;
    }
    for (const auto& task : round.reconstructions) {
      dst[{task.chunk.stripe, task.chunk.index}] = task.dst;
    }
  }
  for (int stripe = 0; stripe < layout.num_stripes(); ++stripe) {
    std::set<int> racks;
    for (int index = 0; index < layout.chunks_per_stripe(); ++index) {
      const ChunkRef chunk{stripe, index};
      NodeId node = layout.node_of(chunk);
      if (batch_set.count(node) != 0) {
        const auto it = dst.find({stripe, index});
        ASSERT_NE(it, dst.end()) << "chunk (" << stripe << "," << index
                                 << ") of a batch member not repaired";
        node = it->second;
      }
      if (node >= num_storage) continue;  // spare: overflow rack, exempt
      EXPECT_TRUE(racks.insert(topo.rack_of(node)).second)
          << "stripe " << stripe << " has two chunks in rack "
          << topo.rack_of(node) << " after the plan applies";
    }
  }
}

TEST_P(PlacementPropertyTest, RackedPlanKeepsStripesRackDisjoint) {
  const core::Scenario scenario = GetParam();
  for (int s = 0; s < seed_count(); ++s) {
    const uint64_t seed = seed_base() + static_cast<uint64_t>(s);
    for (int batch_size = 1; batch_size <= 3; ++batch_size) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " batch=" +
                   std::to_string(batch_size) +
                   " (override with FASTPR_PROPERTY_SEED_BASE)");
      Rng rng(seed);
      // 12 racks x 2 with n=6: every stripe leaves 6 racks (12 nodes)
      // free, enough slack for the per-round greedy destination pick
      // even when a batch of 3 repairs several chunks of one stripe at
      // once; batch 3 on k'=4 still drives the forced-migration path.
      const int num_storage = 24;
      auto layout = cluster::StripeLayout::random_racked(
          num_storage, /*chunks_per_stripe=*/6, /*num_stripes=*/30,
          /*nodes_per_rack=*/2, rng);
      cluster::ClusterState state(
          num_storage, /*num_hot_standby=*/3,
          cluster::BandwidthProfile{MBps(100), Gbps(1)});
      const auto batch = most_loaded(layout, batch_size);
      for (NodeId member : batch) {
        state.set_health(member, cluster::NodeHealth::kSoonToFail);
      }
      const net::Topology topo(12, 2, net::Oversub(4.0));
      core::PlannerOptions options;
      options.scenario = scenario;
      options.k_repair = 4;
      options.chunk_bytes = static_cast<double>(MB(4));
      options.topology = &topo;
      core::MultiStfPlanner planner(layout, state, options);
      for (const auto& plan :
           {planner.plan_fastpr(), planner.plan_sequential()}) {
        core::validate_plan(plan, layout, state, options.k_repair,
                            /*code=*/nullptr, /*helper_reads_per_node=*/1,
                            &topo);
        expect_placement_invariants(plan, layout, batch, scenario,
                                    num_storage, /*num_standby=*/3);
        if (scenario == core::Scenario::kScattered) {
          expect_rack_disjoint_after_plan(plan, layout, batch, topo,
                                          num_storage);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, PlacementPropertyTest,
    ::testing::Values(core::Scenario::kScattered,
                      core::Scenario::kHotStandby),
    [](const auto& info) {
      return info.param == core::Scenario::kScattered ? "scattered"
                                                      : "hotstandby";
    });

}  // namespace
}  // namespace fastpr
