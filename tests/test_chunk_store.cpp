// ChunkStore: materialization, oracle fallback, throttling, failure
// injection, file-backed mode.
#include "agent/chunk_store.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>

#include "agent/testbed.h"
#include "ec/rs_code.h"
#include "util/check.h"

namespace fastpr::agent {
namespace {

using cluster::ChunkRef;

ChunkStore::Options unthrottled() {
  ChunkStore::Options opts;
  opts.disk_bytes_per_sec = 0;
  return opts;
}

TEST(ChunkStore, WriteReadRoundTrip) {
  ChunkStore store(unthrottled());
  const ChunkRef ref{1, 2};
  std::vector<uint8_t> data = {1, 2, 3, 4};
  store.write(ref, data);
  EXPECT_TRUE(store.contains(ref));
  EXPECT_TRUE(store.has_materialized(ref));
  const auto got = store.read(ref);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);
}

TEST(ChunkStore, MissingChunkReturnsNullopt) {
  ChunkStore store(unthrottled());
  EXPECT_FALSE(store.read({0, 0}).has_value());
  EXPECT_FALSE(store.contains({0, 0}));
}

TEST(ChunkStore, EraseRemoves) {
  ChunkStore store(unthrottled());
  store.write({1, 1}, {9});
  store.erase({1, 1});
  EXPECT_FALSE(store.read({1, 1}).has_value());
  EXPECT_EQ(store.materialized_count(), 0u);
}

TEST(ChunkStore, ReadErrorInjection) {
  ChunkStore store(unthrottled());
  store.write({2, 0}, {1, 2, 3});
  store.inject_read_error({2, 0});
  EXPECT_FALSE(store.read({2, 0}).has_value());
  EXPECT_FALSE(store.read_unthrottled({2, 0}).has_value());
  store.clear_read_errors();
  EXPECT_TRUE(store.read({2, 0}).has_value());
}

TEST(ChunkStore, OracleServesUnwrittenChunks) {
  const ec::RsCode code(5, 3);
  const SyntheticOracle oracle(code, 4096, /*num_stripes=*/10, /*seed=*/3);
  ChunkStore store(unthrottled(), &oracle);
  const auto data = store.read({0, 0});
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->size(), 4096u);
  EXPECT_TRUE(store.contains({0, 0}));
  EXPECT_FALSE(store.has_materialized({0, 0}));
  // Out-of-range chunks stay absent.
  EXPECT_FALSE(store.read({99, 0}).has_value());
  EXPECT_FALSE(store.read({0, 7}).has_value());
}

TEST(ChunkStore, MaterializedOverridesOracle) {
  const ec::RsCode code(5, 3);
  const SyntheticOracle oracle(code, 64, 10, 3);
  ChunkStore store(unthrottled(), &oracle);
  std::vector<uint8_t> mine(64, 0xEE);
  store.write({0, 0}, mine);
  EXPECT_EQ(*store.read({0, 0}), mine);
}

TEST(ChunkStore, OracleParityIsConsistentWithCode) {
  // Decoding k oracle chunks must reproduce the oracle's parity chunk —
  // the property the whole testbed verification relies on.
  const ec::RsCode code(5, 3);
  const SyntheticOracle oracle(code, 512, 4, 11);
  std::vector<std::vector<uint8_t>> data;
  for (int i = 0; i < 3; ++i) data.push_back(*oracle.generate({2, i}));
  std::vector<ec::ConstChunk> spans(data.begin(), data.end());
  std::vector<std::vector<uint8_t>> parity(2, std::vector<uint8_t>(512));
  std::vector<ec::MutChunk> pspans(parity.begin(), parity.end());
  code.encode(spans, pspans);
  EXPECT_EQ(parity[0], *oracle.generate({2, 3}));
  EXPECT_EQ(parity[1], *oracle.generate({2, 4}));
}

TEST(ChunkStore, ThrottleSlowsIo) {
  ChunkStore::Options opts;
  opts.disk_bytes_per_sec = 20e6;  // 20 MB/s
  ChunkStore store(opts);
  // 12 MB of I/O against a 4 MiB burst: at least ~8 MB must wait for
  // refill — about 0.4 s at 20 MB/s.
  std::vector<uint8_t> data(4 << 20, 0x11);
  const auto start = std::chrono::steady_clock::now();
  store.write({0, 0}, data);
  (void)store.read({0, 0});
  (void)store.read({0, 0});
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GT(secs, 0.25);
}

TEST(ChunkStore, ChargeIoHonorsBucket) {
  ChunkStore::Options opts;
  opts.disk_bytes_per_sec = 4e6;
  ChunkStore store(opts);
  const auto start = std::chrono::steady_clock::now();
  store.charge_io(6'000'000);  // beyond burst: ~0.5+ s at 4 MB/s
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GT(secs, 0.3);
}

TEST(ChunkStore, FileBackedPersistsAndReads) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "fastpr_store_test";
  std::filesystem::remove_all(dir);
  ChunkStore::Options opts;
  opts.directory = dir;
  ChunkStore store(opts);
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  store.write({7, 3}, data);
  EXPECT_TRUE(std::filesystem::exists(dir / "s7_i3.chunk"));
  const auto got = store.read({7, 3});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);
  store.erase({7, 3});
  EXPECT_FALSE(std::filesystem::exists(dir / "s7_i3.chunk"));
  std::filesystem::remove_all(dir);
}

TEST(ChunkStore, ScrubCleanStoreFindsNothing) {
  ChunkStore store(unthrottled());
  store.write({0, 0}, std::vector<uint8_t>(100, 1));
  store.write({0, 1}, std::vector<uint8_t>(100, 2));
  EXPECT_TRUE(store.scrub().empty());
}

TEST(ChunkStore, ScrubDetectsSilentCorruption) {
  // A latent sector error flips a bit without any I/O error — exactly
  // what background scrubbing exists to find.
  ChunkStore store(unthrottled());
  store.write({3, 1}, std::vector<uint8_t>(4096, 0xAB));
  store.write({3, 2}, std::vector<uint8_t>(4096, 0xCD));
  store.corrupt({3, 1}, 1234);
  const auto damaged = store.scrub();
  ASSERT_EQ(damaged.size(), 1u);
  EXPECT_EQ(damaged[0], (ChunkRef{3, 1}));
  // Rewriting the chunk heals it.
  store.write({3, 1}, std::vector<uint8_t>(4096, 0xAB));
  EXPECT_TRUE(store.scrub().empty());
}

TEST(ChunkStore, CorruptRequiresMaterializedChunk) {
  ChunkStore store(unthrottled());
  EXPECT_THROW(store.corrupt({9, 9}, 0), CheckFailure);
}

}  // namespace
}  // namespace fastpr::agent
