// Round placement: source matching distinctness, scattered destination
// fault tolerance, hot-standby round-robin.
#include "core/placement.h"

#include <gtest/gtest.h>

#include "core/recon_sets.h"

#include <set>

#include "util/rng.h"

namespace fastpr::core {
namespace {

using cluster::ChunkRef;
using cluster::NodeId;
using cluster::StripeLayout;

struct Fixture {
  StripeLayout layout;
  NodeId stf;
  std::vector<NodeId> sources;
  std::vector<NodeId> dests;

  static Fixture random(int num_nodes, int n, int stripes, uint64_t seed) {
    Rng rng(seed);
    Fixture f{StripeLayout::random(num_nodes, n, stripes, rng), 0, {}, {}};
    for (NodeId node = 1; node < num_nodes; ++node) {
      if (f.layout.load(node) > f.layout.load(f.stf)) f.stf = node;
    }
    for (NodeId node = 0; node < num_nodes; ++node) {
      if (node != f.stf) {
        f.sources.push_back(node);
        f.dests.push_back(node);
      }
    }
    return f;
  }
};

TEST(Placement, SourcesDistinctWithinRound) {
  auto f = Fixture::random(30, 6, 200, 1);
  const int k = 4;
  // Use a genuine reconstruction set so the round is matchable by
  // construction (Algorithm 1's guarantee the placement relies on).
  const auto sets = find_reconstruction_sets(f.layout, f.stf, f.sources, k,
                                             ReconSetOptions{});
  ASSERT_FALSE(sets.empty());
  ScheduledRound round;
  round.reconstruct = sets.front();
  int cursor = 0;
  const auto assigned =
      assign_round(f.layout, f.stf, f.sources, f.dests,
                   Scenario::kScattered, k, round, &cursor);
  std::set<NodeId> read_nodes;
  for (const auto& task : assigned.reconstructions) {
    ASSERT_EQ(task.sources.size(), 4u);
    for (const auto& src : task.sources) {
      EXPECT_TRUE(read_nodes.insert(src.node).second)
          << "node reads twice in one round";
      // The helper really lives there and belongs to the right stripe.
      EXPECT_EQ(f.layout.node_of(src.chunk), src.node);
      EXPECT_EQ(src.chunk.stripe, task.chunk.stripe);
      EXPECT_NE(src.node, f.stf);
    }
  }
}

TEST(Placement, ScatteredDestinationsPreserveFaultTolerance) {
  auto f = Fixture::random(30, 6, 200, 2);
  const auto sets = find_reconstruction_sets(f.layout, f.stf, f.sources, 4,
                                             ReconSetOptions{});
  ASSERT_FALSE(sets.empty());
  ScheduledRound round;
  round.reconstruct = sets.front();
  if (round.reconstruct.size() > 3) round.reconstruct.resize(3);
  const auto chunks = f.layout.chunks_on(f.stf);
  for (ChunkRef c : chunks) {
    if (round.migrate.size() >= 3) break;
    if (std::find(round.reconstruct.begin(), round.reconstruct.end(), c) ==
        round.reconstruct.end()) {
      round.migrate.push_back(c);
    }
  }
  int cursor = 0;
  const auto assigned =
      assign_round(f.layout, f.stf, f.sources, f.dests,
                   Scenario::kScattered, 4, round, &cursor);
  std::set<NodeId> dests;
  auto check_dst = [&](ChunkRef chunk, NodeId dst) {
    EXPECT_NE(dst, f.stf);
    EXPECT_FALSE(f.layout.stripe_uses_node(chunk.stripe, dst))
        << "destination already holds a chunk of the stripe";
    EXPECT_TRUE(dests.insert(dst).second) << "destination reused in round";
  };
  for (const auto& t : assigned.reconstructions) check_dst(t.chunk, t.dst);
  for (const auto& t : assigned.migrations) check_dst(t.chunk, t.dst);
  EXPECT_EQ(assigned.migrations.size(), round.migrate.size());
}

TEST(Placement, HotStandbyRoundRobinAcrossRounds) {
  auto f = Fixture::random(20, 5, 100, 3);
  const std::vector<NodeId> spares = {20, 21, 22};
  int cursor = 0;
  std::vector<int> uses(3, 0);
  for (int round_idx = 0; round_idx < 3; ++round_idx) {
    ScheduledRound round;
    const auto chunks = f.layout.chunks_on(f.stf);
    round.reconstruct.push_back(chunks[static_cast<size_t>(round_idx)]);
    round.migrate.push_back(chunks[static_cast<size_t>(round_idx + 3)]);
    const auto assigned =
        assign_round(f.layout, f.stf, f.sources, spares,
                     Scenario::kHotStandby, 3, round, &cursor);
    for (const auto& t : assigned.reconstructions) {
      ++uses[static_cast<size_t>(t.dst - 20)];
    }
    for (const auto& t : assigned.migrations) {
      ++uses[static_cast<size_t>(t.dst - 20)];
    }
  }
  // 6 repairs over 3 spares: perfectly even.
  EXPECT_EQ(uses, (std::vector<int>{2, 2, 2}));
}

TEST(Placement, EmptyRound) {
  auto f = Fixture::random(15, 4, 50, 4);
  int cursor = 0;
  const auto assigned =
      assign_round(f.layout, f.stf, f.sources, f.dests,
                   Scenario::kScattered, 3, ScheduledRound{}, &cursor);
  EXPECT_TRUE(assigned.reconstructions.empty());
  EXPECT_TRUE(assigned.migrations.empty());
}

}  // namespace
}  // namespace fastpr::core
