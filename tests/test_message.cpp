// Wire format: serialize/deserialize round-trips, size accounting,
// malformed-input rejection (fuzz-ish).
#include "net/message.h"

#include <gtest/gtest.h>

#include <random>

#include "util/units.h"

namespace fastpr::net {
namespace {

Message sample_message() {
  Message m;
  m.type = MessageType::kReconstructCmd;
  m.from = 3;
  m.to = 9;
  m.task_id = 0xDEADBEEFCAFEULL;
  m.attempt = 3;
  m.trace.trace_id = 0x1122334455667788ULL;
  m.trace.parent_span_id = 0x99AABBCCDDEEFF00ULL;
  m.trace.origin_node = 3;
  m.trace.origin_ts_us = 123456789;
  m.chunk = {42, 7};
  m.dst = 9;
  m.mode = TransferMode::kDecode;
  m.coefficient = 0x1D;
  m.packet_index = 5;
  m.total_packets = 16;
  m.hop = 2;
  m.chunk_bytes = 1 * kMiB;
  m.packet_bytes = 64 * kKiB;
  m.sources = {{1, {42, 0}, 10}, {2, {42, 1}, 20}, {4, {42, 3}, 0}};
  m.error = "nothing";
  m.payload = {0x00, 0xFF, 0x10, 0x20};
  return m;
}

bool equal(const Message& a, const Message& b) {
  if (a.type != b.type || a.from != b.from || a.to != b.to ||
      a.task_id != b.task_id || a.attempt != b.attempt ||
      a.trace.trace_id != b.trace.trace_id ||
      a.trace.parent_span_id != b.trace.parent_span_id ||
      a.trace.origin_node != b.trace.origin_node ||
      a.trace.origin_ts_us != b.trace.origin_ts_us ||
      !(a.chunk == b.chunk) || a.dst != b.dst ||
      a.mode != b.mode || a.coefficient != b.coefficient ||
      a.packet_index != b.packet_index ||
      a.total_packets != b.total_packets || a.hop != b.hop ||
      a.chunk_bytes != b.chunk_bytes || a.packet_bytes != b.packet_bytes ||
      a.error != b.error || a.payload != b.payload ||
      a.sources.size() != b.sources.size()) {
    return false;
  }
  for (size_t i = 0; i < a.sources.size(); ++i) {
    if (a.sources[i].node != b.sources[i].node ||
        !(a.sources[i].chunk == b.sources[i].chunk) ||
        a.sources[i].coefficient != b.sources[i].coefficient) {
      return false;
    }
  }
  return true;
}

TEST(Message, RoundTrip) {
  const Message m = sample_message();
  const auto bytes = serialize(m);
  EXPECT_EQ(bytes.size(), m.encoded_size());
  const auto parsed = deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(equal(m, *parsed));
}

TEST(Message, RoundTripAllTypes) {
  for (int t = 1; t <= 12; ++t) {
    Message m = sample_message();
    m.type = static_cast<MessageType>(t);
    const auto parsed = deserialize(serialize(m));
    ASSERT_TRUE(parsed.has_value()) << "type " << t;
    EXPECT_TRUE(equal(m, *parsed));
  }
}

TEST(Message, DataPacketPredicate) {
  // The payload-bearing streaming types — and only those — are shaped
  // and pooled as data packets.
  for (int t = 1; t <= 12; ++t) {
    const auto type = static_cast<MessageType>(t);
    const bool expected = type == MessageType::kDataPacket ||
                          type == MessageType::kChainPacket;
    EXPECT_EQ(is_data_packet(type), expected) << "type " << t;
  }
}

TEST(Message, EmptyFieldsRoundTrip) {
  Message m;
  m.type = MessageType::kTaskDone;
  m.from = 0;
  m.to = 1;
  const auto parsed = deserialize(serialize(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(equal(m, *parsed));
}

TEST(Message, LargePayloadRoundTrip) {
  Message m = sample_message();
  m.payload.assign(1 << 20, 0xAB);
  const auto parsed = deserialize(serialize(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload.size(), m.payload.size());
  EXPECT_EQ(parsed->payload, m.payload);
}

TEST(Message, TruncatedInputRejected) {
  const auto bytes = serialize(sample_message());
  for (size_t len : {size_t{0}, size_t{1}, bytes.size() / 2,
                     bytes.size() - 1}) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(deserialize(cut).has_value()) << "len=" << len;
  }
}

TEST(Message, TrailingGarbageRejected) {
  auto bytes = serialize(sample_message());
  bytes.push_back(0x00);
  EXPECT_FALSE(deserialize(bytes).has_value());
}

TEST(Message, BadTypeOrModeRejected) {
  auto bytes = serialize(sample_message());
  bytes[0] = 0;  // type below range
  EXPECT_FALSE(deserialize(bytes).has_value());
  bytes = serialize(sample_message());
  bytes[0] = 99;  // type above range
  EXPECT_FALSE(deserialize(bytes).has_value());
}

TEST(Message, RandomMutationNeverCrashes) {
  // Property: arbitrary bit flips either parse to something or are
  // rejected — no exceptions, no UB (run under the normal test harness;
  // sanitizer jobs would catch memory errors).
  std::mt19937 rng(99);
  const auto pristine = serialize(sample_message());
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = pristine;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      bytes[rng() % bytes.size()] ^=
          static_cast<uint8_t>(1u << (rng() % 8));
    }
    (void)deserialize(bytes);  // must not crash
  }
  // Random length truncation/extension too.
  for (int trial = 0; trial < 500; ++trial) {
    auto bytes = pristine;
    bytes.resize(rng() % (pristine.size() * 2));
    (void)deserialize(bytes);
  }
}

TEST(Message, EncodedSizeTracksFields) {
  Message m;
  m.type = MessageType::kTaskDone;
  const size_t base = m.encoded_size();
  m.payload.assign(100, 1);
  EXPECT_EQ(m.encoded_size(), base + 100);
  m.error = "xyz";
  EXPECT_EQ(m.encoded_size(), base + 103);
  m.sources.push_back({});
  EXPECT_EQ(m.encoded_size(), base + 103 + 13);
}

}  // namespace
}  // namespace fastpr::net
