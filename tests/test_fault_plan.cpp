// FaultPlan text format: parse / to_string round-trips and rejection of
// malformed input (DESIGN.md §7).
#include "net/fault_plan.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fastpr::net {
namespace {

TEST(FaultPlan, ParsesEveryDirective) {
  const auto plan = FaultPlan::parse(
      "# chaos schedule\n"
      "seed 42\n"
      "crash node=3 after_packets=10\n"
      "crash node=stf after_bytes=65536   # dies mid-migration\n"
      "read_error node=stf\n"
      "read_error node=4 stripe=7\n"
      "flaky node=any drop=0.01 max_drops=4 dup=0.05 delay=0.5 "
      "delay_ms=2 max_delays=40 data_only=0\n");

  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].node, 3);
  EXPECT_EQ(plan.crashes[0].after_packets, 10u);
  EXPECT_EQ(plan.crashes[0].after_bytes, 0u);
  EXPECT_EQ(plan.crashes[1].node, kStfSentinel);
  EXPECT_EQ(plan.crashes[1].after_bytes, 65536u);
  ASSERT_EQ(plan.read_errors.size(), 2u);
  EXPECT_EQ(plan.read_errors[0].node, kStfSentinel);
  EXPECT_EQ(plan.read_errors[0].stripe, FaultPlan::ReadError::kAllStripes);
  EXPECT_EQ(plan.read_errors[1].node, 4);
  EXPECT_EQ(plan.read_errors[1].stripe, 7);
  ASSERT_EQ(plan.flaky.size(), 1u);
  EXPECT_EQ(plan.flaky[0].node, kAnyNode);
  EXPECT_DOUBLE_EQ(plan.flaky[0].drop_prob, 0.01);
  EXPECT_EQ(plan.flaky[0].max_drops, 4u);
  EXPECT_DOUBLE_EQ(plan.flaky[0].dup_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan.flaky[0].delay_prob, 0.5);
  EXPECT_EQ(plan.flaky[0].delay.count(), 2);
  EXPECT_EQ(plan.flaky[0].max_delays, 40u);
  EXPECT_FALSE(plan.flaky[0].data_only);
}

TEST(FaultPlan, ParsesSlowDirective) {
  const auto plan = FaultPlan::parse(
      "slow node=5 factor=4\n"
      "slow node=stf factor=2.5 after_bytes=1048576\n");
  ASSERT_EQ(plan.slow.size(), 2u);
  EXPECT_EQ(plan.slow[0].node, 5);
  EXPECT_DOUBLE_EQ(plan.slow[0].factor, 4.0);
  EXPECT_EQ(plan.slow[0].after_bytes, 0u);
  EXPECT_EQ(plan.slow[1].node, kStfSentinel);
  EXPECT_DOUBLE_EQ(plan.slow[1].factor, 2.5);
  EXPECT_EQ(plan.slow[1].after_bytes, 1048576u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, SlowRoundTripsAndResolvesStf) {
  auto plan = FaultPlan::parse(
      "seed 3\n"
      "slow node=stf factor=8 after_bytes=4096\n"
      "slow node=2 factor=1.5\n");
  const auto reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
  ASSERT_EQ(reparsed.slow.size(), 2u);
  EXPECT_EQ(reparsed.slow[0].node, kStfSentinel);
  EXPECT_DOUBLE_EQ(reparsed.slow[0].factor, 8.0);
  EXPECT_EQ(reparsed.slow[0].after_bytes, 4096u);
  EXPECT_DOUBLE_EQ(reparsed.slow[1].factor, 1.5);

  plan.resolve_stf(6);
  EXPECT_EQ(plan.slow[0].node, 6);
  EXPECT_EQ(plan.slow[1].node, 2);
}

TEST(FaultPlan, RejectsMalformedSlow) {
  EXPECT_THROW(FaultPlan::parse("slow factor=2\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("slow node=any factor=2\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("slow node=1\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("slow node=1 factor=1\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("slow node=1 factor=0.5\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("slow node=1 factor=2 wat=3\n"),
               CheckFailure);
}

TEST(FaultPlan, RoundTripsThroughToString) {
  const auto plan = FaultPlan::parse(
      "seed 7\n"
      "crash node=stf after_bytes=262144\n"
      "crash node=5 after_packets=3 after_bytes=4096\n"
      "read_error node=2 stripe=3\n"
      "read_error node=stf\n"
      "flaky node=1 drop=0.25 max_drops=2\n"
      "flaky node=any dup=0.125 delay=0.5 delay_ms=8 data_only=0 "
      "max_dups=6 max_delays=12\n");
  const auto reparsed = FaultPlan::parse(plan.to_string());
  // to_string is the parse-normal form, so one more round must be a
  // fixed point.
  EXPECT_EQ(reparsed.to_string(), plan.to_string());

  EXPECT_EQ(reparsed.seed, plan.seed);
  ASSERT_EQ(reparsed.crashes.size(), plan.crashes.size());
  for (size_t i = 0; i < plan.crashes.size(); ++i) {
    EXPECT_EQ(reparsed.crashes[i].node, plan.crashes[i].node);
    EXPECT_EQ(reparsed.crashes[i].after_packets,
              plan.crashes[i].after_packets);
    EXPECT_EQ(reparsed.crashes[i].after_bytes, plan.crashes[i].after_bytes);
  }
  ASSERT_EQ(reparsed.read_errors.size(), plan.read_errors.size());
  for (size_t i = 0; i < plan.read_errors.size(); ++i) {
    EXPECT_EQ(reparsed.read_errors[i].node, plan.read_errors[i].node);
    EXPECT_EQ(reparsed.read_errors[i].stripe, plan.read_errors[i].stripe);
  }
  ASSERT_EQ(reparsed.flaky.size(), plan.flaky.size());
  for (size_t i = 0; i < plan.flaky.size(); ++i) {
    EXPECT_EQ(reparsed.flaky[i].node, plan.flaky[i].node);
    EXPECT_DOUBLE_EQ(reparsed.flaky[i].drop_prob, plan.flaky[i].drop_prob);
    EXPECT_DOUBLE_EQ(reparsed.flaky[i].dup_prob, plan.flaky[i].dup_prob);
    EXPECT_DOUBLE_EQ(reparsed.flaky[i].delay_prob,
                     plan.flaky[i].delay_prob);
    EXPECT_EQ(reparsed.flaky[i].delay, plan.flaky[i].delay);
    EXPECT_EQ(reparsed.flaky[i].data_only, plan.flaky[i].data_only);
    EXPECT_EQ(reparsed.flaky[i].max_drops, plan.flaky[i].max_drops);
    EXPECT_EQ(reparsed.flaky[i].max_dups, plan.flaky[i].max_dups);
    EXPECT_EQ(reparsed.flaky[i].max_delays, plan.flaky[i].max_delays);
  }
}

TEST(FaultPlan, EmptyAndCommentOnlyInputParsesToEmptyPlan) {
  const auto plan = FaultPlan::parse("# nothing but comments\n\n   \n");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.seed, 1u);
}

TEST(FaultPlan, ResolveStfRewritesSentinels) {
  auto plan = FaultPlan::parse(
      "crash node=stf\n"
      "read_error node=stf stripe=2\n"
      "flaky node=stf drop=0.5\n"
      "flaky node=any dup=0.5\n");
  plan.resolve_stf(9);
  EXPECT_EQ(plan.crashes[0].node, 9);
  EXPECT_EQ(plan.read_errors[0].node, 9);
  EXPECT_EQ(plan.flaky[0].node, 9);
  EXPECT_EQ(plan.flaky[1].node, kAnyNode);  // wildcard untouched
}

TEST(FaultPlan, RejectsMalformedInput) {
  EXPECT_THROW(FaultPlan::parse("explode node=1\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("seed\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("seed banana\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("crash after_packets=1\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("crash node=any\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("crash node=-4\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("crash node=1 when=later\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("read_error stripe=1\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("read_error node=any\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("flaky node=1 drop=1.5\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("flaky node=1 drop\n"), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("flaky node=1 jitter=0.5\n"), CheckFailure);
}

}  // namespace
}  // namespace fastpr::net
