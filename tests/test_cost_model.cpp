// §III analysis: Equations (4)-(6) values, optimality of Eq. (2), and
// the paper's headline reduction numbers.
#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/units.h"

namespace fastpr::core {
namespace {

ModelParams paper_defaults() {
  // §III defaults: M=100, U=1000, c=64MB, bd=100MB/s, bn=1Gb/s, RS(9,6).
  ModelParams p;
  p.num_nodes = 100;
  p.stf_chunks = 1000;
  p.chunk_bytes = static_cast<double>(MB(64));
  p.disk_bw = MBps(100);
  p.net_bw = Gbps(1);
  p.k_repair = 6;
  p.hot_standby = 3;
  p.scenario = Scenario::kScattered;
  return p;
}

TEST(CostModel, Equation4Migration) {
  const CostModel m(paper_defaults());
  // tm = c/bd + c/bn + c/bd = 0.64 + 0.512 + 0.64 s.
  EXPECT_NEAR(m.tm(), 0.64 + 64.0 * (1 << 20) / (1e9 / 8) + 0.64, 1e-9);
}

TEST(CostModel, Equation5ScatteredReconstruction) {
  const CostModel m(paper_defaults());
  const double c_over_bn = 64.0 * (1 << 20) / (1e9 / 8);
  EXPECT_NEAR(m.tr(10), 0.64 + 6 * c_over_bn + 0.64, 1e-9);
  // Scattered tr is independent of the round size g.
  EXPECT_DOUBLE_EQ(m.tr(1), m.tr(16));
}

TEST(CostModel, Equation6HotStandbyReconstruction) {
  auto p = paper_defaults();
  p.scenario = Scenario::kHotStandby;
  const CostModel m(p);
  const double c_over_bn = 64.0 * (1 << 20) / (1e9 / 8);
  const double g = 12.0;
  EXPECT_NEAR(m.tr(g), 0.64 + g * 6 * c_over_bn / 3 + g * 0.64 / 3, 1e-9);
  // Hot-standby tr grows with g — the spares are the funnel.
  EXPECT_GT(m.tr(16), m.tr(4));
}

TEST(CostModel, Equation1MaxOfStreams) {
  const CostModel m(paper_defaults());
  const double g = m.max_parallel_groups();
  EXPECT_DOUBLE_EQ(m.total_time(0, g), m.reactive_time());
  EXPECT_DOUBLE_EQ(m.total_time(1000, g), 1000 * m.tm());
}

TEST(CostModel, Equation2IsMinimumOfEquation1) {
  // T(x*) = TP and T(x) >= TP for sampled x — the closed form is the
  // true optimum of the max() curve.
  for (auto scenario : {Scenario::kScattered, Scenario::kHotStandby}) {
    auto p = paper_defaults();
    p.scenario = scenario;
    const CostModel m(p);
    const double g = m.max_parallel_groups();
    const double tp = m.predictive_time();
    const double x_star = m.optimal_migration_chunks();
    EXPECT_NEAR(m.total_time(x_star, g), tp, tp * 1e-9);
    for (double x = 0; x <= 1000; x += 25) {
      EXPECT_GE(m.total_time(x, g), tp * (1 - 1e-12)) << "x=" << x;
    }
  }
}

TEST(CostModel, PredictiveNeverWorseThanReactiveOrMigration) {
  for (int k : {2, 4, 6, 10, 12}) {
    for (int nodes : {20, 50, 100, 200}) {
      auto p = paper_defaults();
      p.k_repair = k;
      p.num_nodes = nodes;
      const CostModel m(p);
      EXPECT_LE(m.predictive_time(), m.reactive_time() * (1 + 1e-12));
      EXPECT_LE(m.predictive_time(),
                m.migration_only_time() * (1 + 1e-12));
    }
  }
}

TEST(CostModel, PaperHeadline33PercentAtRs16_12) {
  // §III: "reduces the repair time ... by 33.1% in RS(16,12)".
  auto p = paper_defaults();
  p.k_repair = 12;
  const CostModel m(p);
  const double reduction =
      1.0 - m.predictive_time() / m.reactive_time();
  EXPECT_NEAR(reduction, 0.331, 0.02);
}

TEST(CostModel, PaperHeadline41PercentHotStandbyH3) {
  // §III: "when h = 3, predictive repair reduces the repair time by
  // 41.3%".
  auto p = paper_defaults();
  p.scenario = Scenario::kHotStandby;
  p.hot_standby = 3;
  const CostModel m(p);
  const double reduction =
      1.0 - m.predictive_time() / m.reactive_time();
  EXPECT_NEAR(reduction, 0.413, 0.02);
}

TEST(CostModel, GainGrowsWhenReactiveHurts) {
  // Fig. 2 trends: the predictive gain grows with larger k, smaller M,
  // larger bd, smaller bn.
  auto base = paper_defaults();
  const auto gain = [](const ModelParams& p) {
    const CostModel m(p);
    return 1.0 - m.predictive_time() / m.reactive_time();
  };
  auto p = base;
  p.k_repair = 12;
  EXPECT_GT(gain(p), gain(base));  // larger k
  p = base;
  p.num_nodes = 30;
  EXPECT_GT(gain(p), gain(base));  // smaller M
  p = base;
  p.disk_bw = MBps(500);
  EXPECT_GT(gain(p), gain(base));  // faster disks
  p = base;
  p.net_bw = Gbps(10);
  EXPECT_LT(gain(p), gain(base));  // faster network shrinks the gain
}

TEST(CostModel, HotStandbyGainShrinksWithMoreSpares) {
  auto p = paper_defaults();
  p.scenario = Scenario::kHotStandby;
  const auto gain = [&](int h) {
    auto q = p;
    q.hot_standby = h;
    const CostModel m(q);
    return 1.0 - m.predictive_time() / m.reactive_time();
  };
  EXPECT_GT(gain(3), gain(6));
  EXPECT_GT(gain(6), gain(9));
}

TEST(CostModel, LrcSubstitutionReducesRepairCost) {
  // §III "Extension for LRCs": k' = k/l < k lowers reactive time.
  auto rs = paper_defaults();
  rs.k_repair = 12;
  auto lrc = paper_defaults();
  lrc.k_repair = 6;  // LRC(12, l=2): k' = 6
  EXPECT_LT(CostModel(lrc).reactive_time(),
            CostModel(rs).reactive_time());
}

TEST(CostModel, MsrHelperFractionShrinksReconstruction) {
  // MSR(14,10,d=13): 13 helpers ship 1/4 chunk each — 3.25 chunks of
  // traffic instead of 10 — so tr and the reactive time drop, and the
  // predictive-over-reactive margin narrows (§II-A discussion).
  auto rs = paper_defaults();
  rs.k_repair = 10;
  auto msr = paper_defaults();
  msr.k_repair = 13;
  msr.helper_bytes_fraction = 0.25;
  const CostModel rs_model(rs), msr_model(msr);
  EXPECT_LT(msr_model.tr(1), rs_model.tr(1));
  EXPECT_LT(msr_model.reactive_time(), rs_model.reactive_time());
  const auto gain = [](const CostModel& m) {
    return 1.0 - m.predictive_time() / m.reactive_time();
  };
  EXPECT_LT(gain(msr_model), gain(rs_model));
}

TEST(CostModel, HelperFractionValidated) {
  auto p = paper_defaults();
  p.helper_bytes_fraction = 0.0;
  EXPECT_THROW(CostModel{p}, CheckFailure);
  p.helper_bytes_fraction = 1.5;
  EXPECT_THROW(CostModel{p}, CheckFailure);
}

TEST(CostModel, MigrationQuotaMatchesRatio) {
  const CostModel m(paper_defaults());
  const int quota = m.migration_quota(16);
  EXPECT_EQ(quota, static_cast<int>(m.tr(16) / m.tm()));
  EXPECT_EQ(m.migration_quota(0), 0);
}

TEST(CostModel, ChainRoundTimeFormula) {
  auto p = paper_defaults();
  p.packet_bytes = static_cast<double>(256 * kKiB);
  p.chain_hop_overhead_seconds = 500e-6;
  const CostModel m(p);
  const double c = p.chunk_bytes;
  const double pkt = p.packet_bytes;
  const double packets = std::ceil(c / pkt);
  const double overhead = (packets + 6 - 1.0) * 500e-6;
  const double want = c / p.disk_bw + c / p.net_bw +
                      5.0 * pkt / p.net_bw + overhead + c / p.disk_bw;
  EXPECT_DOUBLE_EQ(m.tr_chain(10), want);
  // Scattered chain time is independent of the round size g.
  EXPECT_DOUBLE_EQ(m.tr_chain(1), m.tr_chain(16));
  // And the strategy overload dispatches to it.
  EXPECT_DOUBLE_EQ(m.tr(10, RepairStrategy::kChain), m.tr_chain(10));
  EXPECT_DOUBLE_EQ(m.tr(10, RepairStrategy::kFanIn), m.tr(10));
}

TEST(CostModel, ChainHotStandbyFunnels) {
  auto p = paper_defaults();
  p.scenario = Scenario::kHotStandby;
  p.packet_bytes = static_cast<double>(256 * kKiB);
  const CostModel m(p);
  // Spares absorb g single-chunk tails, so chain time grows with g but
  // stays below fan-in's g·k streams.
  EXPECT_GT(m.tr_chain(12), m.tr_chain(3));
  EXPECT_LT(m.tr_chain(12), m.tr(12));
}

TEST(CostModel, ChainOneHelperPaysNoForwarding) {
  auto p = paper_defaults();
  p.k_repair = 1;
  p.packet_bytes = static_cast<double>(64 * kKiB);
  p.chain_hop_overhead_seconds = 1.0;  // would dominate if charged
  const CostModel m(p);
  const double c = p.chunk_bytes;
  EXPECT_DOUBLE_EQ(m.tr_chain(4),
                   c / p.disk_bw + c / p.net_bw + c / p.disk_bw);
}

TEST(CostModel, ChooseStrategyCrossover) {
  // Large packets: overhead per byte is tiny, the chain's single-
  // transfer bound beats fan-in's k-deep funnel. Small packets: the
  // per-forward overhead N·o dominates and fan-in wins. Both sides of
  // the crossover must be visible with the same overhead constant.
  auto p = paper_defaults();
  p.chain_hop_overhead_seconds = 500e-6;
  p.packet_bytes = static_cast<double>(256 * kKiB);
  EXPECT_EQ(CostModel(p).choose_strategy(10), RepairStrategy::kChain);
  p.packet_bytes = static_cast<double>(1 * kKiB);
  EXPECT_EQ(CostModel(p).choose_strategy(10), RepairStrategy::kFanIn);
  // Unset packet size: the chain time is undefined, auto stays fan-in.
  p.packet_bytes = 0;
  EXPECT_EQ(CostModel(p).choose_strategy(10), RepairStrategy::kFanIn);
  EXPECT_THROW(CostModel(p).tr_chain(10), CheckFailure);
}

TEST(CostModel, ChainMigrationQuotaAndRoundTime) {
  auto p = paper_defaults();
  p.packet_bytes = static_cast<double>(256 * kKiB);
  p.chain_hop_overhead_seconds = 500e-6;
  const CostModel m(p);
  // A faster chain round leaves less slack to migrate alongside it.
  EXPECT_EQ(m.migration_quota(16, RepairStrategy::kChain),
            static_cast<int>(m.tr_chain(16) / m.tm()));
  EXPECT_LE(m.migration_quota(16, RepairStrategy::kChain),
            m.migration_quota(16));
  EXPECT_EQ(m.migration_quota(0, RepairStrategy::kChain), 0);
  // round_time takes max(tr, cm·tm) under the chosen strategy; the
  // no-strategy overloads remain the fan-in model.
  EXPECT_DOUBLE_EQ(m.round_time(16, 0, RepairStrategy::kChain),
                   m.tr_chain(16));
  EXPECT_DOUBLE_EQ(m.round_time(16, 1000, RepairStrategy::kChain),
                   1000 * m.tm());
  EXPECT_DOUBLE_EQ(m.round_time(16, 0), m.tr(16));
  EXPECT_DOUBLE_EQ(
      m.round_time_multi(16, {3, 7}, RepairStrategy::kChain),
      std::max(m.tr_chain(16), 7 * m.tm()));
}

TEST(CostModel, RepairBwFractionEqualsScaledNetBw) {
  // DESIGN.md §10: a throttled budget of f·bn must predict exactly what
  // an unthrottled model with net_bw = f·bn predicts — the fraction
  // scales every network term and ONLY the network terms.
  auto throttled = paper_defaults();
  throttled.packet_bytes = static_cast<double>(MB(1));
  throttled.repair_bw_fraction = 0.25;
  auto scaled = throttled;
  scaled.repair_bw_fraction = 1.0;
  scaled.net_bw = throttled.net_bw * 0.25;
  const CostModel a(throttled);
  const CostModel b(scaled);
  EXPECT_DOUBLE_EQ(a.tm(), b.tm());
  EXPECT_DOUBLE_EQ(a.tr(10), b.tr(10));
  EXPECT_DOUBLE_EQ(a.tr_chain(10), b.tr_chain(10));
  EXPECT_DOUBLE_EQ(a.optimal_migration_chunks(),
                   b.optimal_migration_chunks());
  EXPECT_DOUBLE_EQ(a.predictive_time(), b.predictive_time());
  EXPECT_DOUBLE_EQ(a.reactive_time(), b.reactive_time());
  EXPECT_EQ(a.choose_strategy(10), b.choose_strategy(10));

  // Disk terms stay unscaled: quartering the repair bandwidth stretches
  // tm by exactly the extra wire time, strictly less than 4×.
  const CostModel full(paper_defaults());
  EXPECT_GT(a.tm(), full.tm());
  EXPECT_LT(a.tm(), 4 * full.tm());
  const double extra_wire =
      3 * throttled.chunk_bytes / throttled.net_bw;  // c/(bn/4) - c/bn
  EXPECT_NEAR(a.tm(), full.tm() + extra_wire, 1e-9);
}

TEST(CostModel, RejectsBadRepairBwFraction) {
  auto p = paper_defaults();
  p.repair_bw_fraction = 0;
  EXPECT_THROW(CostModel{p}, CheckFailure);
  p.repair_bw_fraction = 1.5;
  EXPECT_THROW(CostModel{p}, CheckFailure);
  p.repair_bw_fraction = -0.5;
  EXPECT_THROW(CostModel{p}, CheckFailure);
}

TEST(CostModel, InvalidParamsRejected) {
  auto p = paper_defaults();
  p.k_repair = 0;
  EXPECT_THROW(CostModel{p}, CheckFailure);
  p = paper_defaults();
  p.k_repair = 100;  // > M - 1
  EXPECT_THROW(CostModel{p}, CheckFailure);
  p = paper_defaults();
  p.disk_bw = 0;
  EXPECT_THROW(CostModel{p}, CheckFailure);
}

}  // namespace
}  // namespace fastpr::core
