// Failure prediction substrate: trace shapes and predictor quality on
// the synthetic population (the paper's >=95%-accuracy premise).
#include "predict/predictor.h"
#include "predict/trained_predictor.h"
#include "predict/trace_generator.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace fastpr::predict {
namespace {

TraceConfig default_config() {
  TraceConfig cfg;
  cfg.num_disks = 400;
  cfg.failure_fraction = 0.08;
  cfg.horizon_days = 90;
  cfg.silent_failure_fraction = 0.0;  // most tests use symptomatic pop.
  return cfg;
}

TEST(TraceGenerator, PopulationCounts) {
  Rng rng(1);
  const auto cfg = default_config();
  const auto traces = generate_traces(cfg, rng);
  ASSERT_EQ(traces.size(), 400u);
  int failing = 0;
  for (const auto& t : traces) failing += t.will_fail ? 1 : 0;
  EXPECT_EQ(failing, 32);  // 8% of 400
}

TEST(TraceGenerator, HealthyDisksStayQuiet) {
  Rng rng(2);
  auto cfg = default_config();
  const auto traces = generate_traces(cfg, rng);
  for (const auto& t : traces) {
    if (t.will_fail) continue;
    const auto& last = t.samples.back();
    // Benign blips accumulate slowly; nowhere near a failing ramp.
    EXPECT_LT(last.values[kReallocatedSectors], 30.0);
    EXPECT_LT(last.values[kReportedUncorrectable], 5.0);
  }
}

TEST(TraceGenerator, FailingDisksRampBeforeFailure) {
  Rng rng(3);
  auto cfg = default_config();
  const auto traces = generate_traces(cfg, rng);
  for (const auto& t : traces) {
    if (!t.will_fail) continue;
    const auto& last = t.samples.back();
    EXPECT_GT(last.values[kReallocatedSectors], 25.0)
        << "disk " << t.disk_id << " failing at day " << t.failure_day;
    // Monotone error counters.
    double prev = -1;
    for (const auto& s : t.samples) {
      EXPECT_GE(s.values[kReallocatedSectors], prev);
      prev = s.values[kReallocatedSectors];
    }
  }
}

TEST(TraceGenerator, TraceEndsAtFailure) {
  Rng rng(4);
  auto cfg = default_config();
  const auto traces = generate_traces(cfg, rng);
  for (const auto& t : traces) {
    if (!t.will_fail) continue;
    EXPECT_LE(t.samples.back().day, t.failure_day);
  }
}

TEST(TraceGenerator, SilentFailuresShowNoSymptoms) {
  Rng rng(5);
  TraceConfig cfg = default_config();
  const auto t =
      generate_trace(0, /*will_fail=*/true, /*silent=*/true,
                     /*failure_day=*/60.0, cfg, rng);
  EXPECT_LT(t.samples.back().values[kReallocatedSectors], 30.0);
}

class PredictorQualityTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PredictorQualityTest, HighAccuracyOnSymptomaticPopulation) {
  Rng rng(6);
  const auto cfg = default_config();
  const auto traces = generate_traces(cfg, rng);

  std::unique_ptr<FailurePredictor> predictor;
  if (std::string(GetParam()) == "logistic") {
    predictor = std::make_unique<LogisticPredictor>();
  } else {
    predictor = std::make_unique<ThresholdPredictor>(50.0);
  }
  // Evaluate mid-trace with a lookahead covering the degradation lead.
  const auto result = evaluate(*predictor, traces, /*as_of_day=*/70.0,
                               /*lookahead_days=*/15.0);
  EXPECT_GE(result.accuracy(), 0.95) << GetParam();
  EXPECT_LE(result.false_alarm_rate(), 0.05) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Predictors, PredictorQualityTest,
                         ::testing::Values("logistic", "threshold"));

TEST(Predictor, NoPeekingPastAsOfDay) {
  Rng rng(7);
  auto cfg = default_config();
  const auto t = generate_trace(0, true, false, 80.0, cfg, rng);
  const LogisticPredictor p;
  // Long before onset the score must be low even though the trace
  // object contains the future ramp.
  EXPECT_LT(p.score(t, 10.0), p.decision_threshold());
  EXPECT_GE(p.score(t, 79.0), p.decision_threshold());
}

TEST(Predictor, SelectStfPicksDegradingDisk) {
  Rng rng(8);
  auto cfg = default_config();
  cfg.num_disks = 60;
  cfg.failure_fraction = 1.0 / 60.0;  // exactly one failing disk
  const auto traces = generate_traces(cfg, rng);
  int failing_id = -1;
  double failure_day = 0;
  for (const auto& t : traces) {
    if (t.will_fail) {
      failing_id = t.disk_id;
      failure_day = t.failure_day;
    }
  }
  ASSERT_NE(failing_id, -1);
  const LogisticPredictor p;
  EXPECT_EQ(select_stf_disk(p, traces, failure_day - 1.0), failing_id);
}

TEST(Predictor, SelectStfReturnsMinusOneWhenAllHealthy) {
  Rng rng(9);
  auto cfg = default_config();
  cfg.num_disks = 50;
  cfg.failure_fraction = 0.0;
  const auto traces = generate_traces(cfg, rng);
  const LogisticPredictor p;
  EXPECT_EQ(select_stf_disk(p, traces, 45.0), -1);
}

TEST(Predictor, EvalMetricsArithmetic) {
  EvalResult r;
  r.true_positives = 8;
  r.false_positives = 2;
  r.true_negatives = 88;
  r.false_negatives = 2;
  EXPECT_DOUBLE_EQ(r.precision(), 0.8);
  EXPECT_DOUBLE_EQ(r.recall(), 0.8);
  EXPECT_DOUBLE_EQ(r.false_alarm_rate(), 2.0 / 90.0);
  EXPECT_DOUBLE_EQ(r.accuracy(), 0.96);
}

TEST(Predictor, DeadDisksExcludedFromEvaluation) {
  Rng rng(10);
  auto cfg = default_config();
  cfg.num_disks = 100;
  cfg.failure_fraction = 0.5;
  const auto traces = generate_traces(cfg, rng);
  const LogisticPredictor p;
  // At the horizon every failing disk is already dead → only negatives
  // remain in the evaluation set.
  const auto result = evaluate(p, traces, cfg.horizon_days + 1.0, 10.0);
  EXPECT_EQ(result.true_positives + result.false_negatives, 0);
  EXPECT_GT(result.true_negatives + result.false_positives, 0);
}

TEST(TrainedPredictor, RequiresTraining) {
  TrainedLogisticPredictor p;
  Rng rng(20);
  auto cfg = default_config();
  const auto t = generate_trace(0, false, false, 0.0, cfg, rng);
  EXPECT_THROW(p.score(t, 10.0), CheckFailure);
}

TEST(TrainedPredictor, LearnsHighAccuracyOnHeldOutDisks) {
  // Train on one population, evaluate on a fresh one (different seed):
  // the SGD model must generalize to the paper's >=95% premise.
  Rng train_rng(21), test_rng(22);
  const auto cfg = default_config();
  const auto train_set = generate_traces(cfg, train_rng);
  const auto test_set = generate_traces(cfg, test_rng);

  TrainedLogisticPredictor model;
  TrainedLogisticPredictor::TrainConfig tc;
  model.train(train_set, tc);
  ASSERT_TRUE(model.trained());

  const auto result = evaluate(model, test_set, /*as_of_day=*/70.0,
                               /*lookahead_days=*/15.0);
  EXPECT_GE(result.accuracy(), 0.95);
  EXPECT_LE(result.false_alarm_rate(), 0.05);
  EXPECT_GE(result.recall(), 0.6);
}

TEST(TrainedPredictor, LearnsPositiveErrorWeights) {
  // The model must discover that error counts predict failure: the
  // level features carry positive weight, the bias is negative.
  Rng rng(23);
  const auto traces = generate_traces(default_config(), rng);
  TrainedLogisticPredictor model;
  model.train(traces, {});
  EXPECT_LT(model.weights()[0], 0.0);  // healthy prior
  EXPECT_GT(model.weights()[1], 0.0);  // reallocated sectors level
}

TEST(TrainedPredictor, NoPeekingPastAsOfDay) {
  Rng rng(24);
  const auto cfg = default_config();
  const auto traces = generate_traces(cfg, rng);
  TrainedLogisticPredictor model;
  model.train(traces, {});
  Rng rng2(25);
  const auto failing = generate_trace(0, true, false, 80.0, cfg, rng2);
  EXPECT_LT(model.score(failing, 10.0), model.decision_threshold());
  EXPECT_GE(model.score(failing, 79.0), model.decision_threshold());
}

}  // namespace
}  // namespace fastpr::predict
