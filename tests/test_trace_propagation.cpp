// Cross-node causal tracing, end to end (DESIGN.md §5c): a testbed
// execute() must produce ONE causally-linked trace — every agent-side
// span reaches the coordinator's root span by climbing parent links,
// across commands, data packets, chain hops, and retried attempts.
//
// The acceptance bar is >= 95% of agent-category spans linked to the
// root (a handful of late flushes from agent worker threads may land
// after the snapshot); in practice the linked fraction here is 1.0.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "agent/testbed.h"
#include "core/repair_plan.h"
#include "ec/rs_code.h"
#include "net/fault_plan.h"
#include "telemetry/trace.h"
#include "util/units.h"

namespace fastpr::agent {
namespace {

using telemetry::TraceEvent;
using telemetry::TraceLog;

#if FASTPR_TELEMETRY_ENABLED

TestbedOptions small_options(uint64_t seed) {
  TestbedOptions opts;
  opts.num_storage = 12;
  opts.num_standby = 2;
  opts.disk_bytes_per_sec = 0;
  opts.net_bytes_per_sec = 0;
  opts.chunk_bytes = 64 * kKiB;
  opts.packet_bytes = 16 * kKiB;
  opts.num_stripes = 20;
  opts.seed = seed;
  return opts;
}

/// The coordinator.execute root span: parent 0 inside a nonzero trace.
const TraceEvent* find_root(const std::vector<TraceEvent>& events) {
  const TraceEvent* root = nullptr;
  for (const auto& ev : events) {
    if (std::string(ev.name) == "coordinator.execute" &&
        ev.trace_id != 0 && ev.parent_span_id == 0) {
      EXPECT_EQ(root, nullptr) << "more than one root execute span";
      root = &ev;
    }
  }
  return root;
}

/// True when climbing `ev`'s parent chain reaches `root_span`.
bool reaches(const TraceEvent& ev,
             const std::map<uint64_t, const TraceEvent*>& by_span,
             uint64_t root_span) {
  uint64_t cur = ev.parent_span_id;
  for (int depth = 0; depth < 64 && cur != 0; ++depth) {
    if (cur == root_span) return true;
    const auto it = by_span.find(cur);
    if (it == by_span.end()) return false;
    cur = it->second->parent_span_id;
  }
  return false;
}

/// Fraction of `category` events that are causal descendants of the
/// root span (and members of its trace). Returns -1 when the category
/// recorded nothing.
double linked_fraction(const std::vector<TraceEvent>& events,
                       const std::string& category,
                       const TraceEvent& root) {
  std::map<uint64_t, const TraceEvent*> by_span;
  for (const auto& ev : events) {
    if (ev.span_id != 0) by_span[ev.span_id] = &ev;
  }
  int total = 0;
  int linked = 0;
  for (const auto& ev : events) {
    if (category != ev.category) continue;
    ++total;
    const bool is_root = ev.span_id == root.span_id;
    if (ev.trace_id == root.trace_id &&
        (is_root || reaches(ev, by_span, root.span_id))) {
      ++linked;
    }
  }
  if (total == 0) return -1;
  return static_cast<double>(linked) / total;
}

/// Snapshot once span appends have quiesced. execute() returning only
/// guarantees the coordinator saw every ack — agent handler scopes
/// append their span on exit, AFTER acking, so under parallel test
/// load a parent span can land a few ms behind its children. Bounded
/// poll; typically zero or one extra iteration.
std::vector<TraceEvent> quiesced_snapshot() {
  auto events = TraceLog::global().snapshot();
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto cur = TraceLog::global().snapshot();
    const bool stable = cur.size() == events.size();
    events = std::move(cur);
    if (stable) break;
  }
  return events;
}

/// Runs `plan` on `tb` with tracing armed and returns the drained
/// events. Asserts the execution succeeded and byte-verified.
std::vector<TraceEvent> traced_execute(Testbed& tb,
                                       const core::RepairPlan& plan) {
  TraceLog::global().clear();
  TraceLog::global().set_enabled(true);
  const auto report = tb.execute(plan);
  auto events = quiesced_snapshot();
  TraceLog::global().set_enabled(false);
  TraceLog::global().clear();
  EXPECT_TRUE(report.success)
      << (report.errors.empty() ? "" : report.errors.front());
  EXPECT_TRUE(tb.verify(report, plan));
  return events;
}

TEST(TracePropagation, InprocAgentSpansDescendFromCoordinatorRoot) {
  ec::RsCode code(6, 4);
  auto opts = small_options(7);
  Testbed tb(opts, code);
  tb.flag_stf();
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_fastpr();
  ASSERT_FALSE(plan.rounds.empty());

  const auto events = traced_execute(tb, plan);
  const TraceEvent* root = find_root(events);
  ASSERT_NE(root, nullptr);

  const double agent_linked = linked_fraction(events, "agent", *root);
  ASSERT_GE(agent_linked, 0) << "no agent spans recorded";
  EXPECT_GE(agent_linked, 0.95);

  // Store I/O under the handlers links too, and the per-round
  // coordinator spans are direct children of the root.
  EXPECT_GE(linked_fraction(events, "store", *root), 0.95);
  EXPECT_GE(linked_fraction(events, "coordinator", *root), 0.95);

  // One execute == one trace: no agent span invented its own trace id.
  std::set<uint64_t> trace_ids;
  for (const auto& ev : events) {
    if (std::string(ev.category) == "agent" && ev.trace_id != 0) {
      trace_ids.insert(ev.trace_id);
    }
  }
  EXPECT_EQ(trace_ids.size(), 1u);
}

TEST(TracePropagation, ChainHopsStayInTheCommandTrace) {
  ec::RsCode code(6, 4);
  auto opts = small_options(9);
  opts.repair_strategy = core::StrategyChoice::kChain;
  Testbed tb(opts, code);
  tb.flag_stf();
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_fastpr();
  ASSERT_FALSE(plan.rounds.empty());
  ASSERT_EQ(plan.rounds[0].strategy, core::RepairStrategy::kChain);

  const auto events = traced_execute(tb, plan);
  const TraceEvent* root = find_root(events);
  ASSERT_NE(root, nullptr);

  // The chain actually ran: head streams and mid-chain forwards both
  // recorded, and every hop's span links back through the chain command
  // to the coordinator root.
  bool saw_head = false;
  bool saw_forward = false;
  for (const auto& ev : events) {
    if (std::string(ev.name) == "agent.chain_stream_head") saw_head = true;
    if (std::string(ev.name) == "agent.chain_forward") saw_forward = true;
  }
  EXPECT_TRUE(saw_head);
  EXPECT_TRUE(saw_forward);
  EXPECT_GE(linked_fraction(events, "agent", *root), 0.95);
}

TEST(TracePropagation, RetriedAttemptIsChildSpanNotNewTrace) {
  ec::RsCode code(6, 4);
  auto opts = small_options(3);
  // Chaos-style short timeouts so the crash is probed out quickly.
  opts.round_timeout = std::chrono::milliseconds(400);
  opts.probe_timeout = std::chrono::milliseconds(150);
  opts.retry_backoff = std::chrono::milliseconds(10);
  opts.max_attempts = 6;
  opts.max_round_extensions = 5;

  // Scout the deterministic plan to pick a helper that will crash
  // mid-stream (same recipe as test_chaos).
  core::RepairPlan scouted;
  {
    Testbed scout(opts, code);
    scout.flag_stf();
    scouted = scout.make_planner(core::Scenario::kScattered).plan_fastpr();
  }
  ASSERT_FALSE(scouted.rounds.empty());
  ASSERT_FALSE(scouted.rounds[0].reconstructions.empty());
  const auto victim = scouted.rounds[0].reconstructions[0].sources[0].node;
  opts.fault_plan = net::FaultPlan::parse(
      "crash node=" + std::to_string(victim) + " after_packets=2\n");

  Testbed tb(opts, code);
  tb.flag_stf();
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_fastpr();

  TraceLog::global().clear();
  TraceLog::global().set_enabled(true);
  const auto report = tb.execute(plan);
  auto events = quiesced_snapshot();
  TraceLog::global().set_enabled(false);
  TraceLog::global().clear();
  EXPECT_TRUE(report.success)
      << (report.errors.empty() ? "" : report.errors.front());
  EXPECT_TRUE(tb.verify(report, plan));
  ASSERT_GT(report.retries, 0);

  const TraceEvent* root = find_root(events);
  ASSERT_NE(root, nullptr);

  // The retried attempt's spans are children inside the SAME trace —
  // a reissue must not mint a fresh root.
  std::set<uint64_t> trace_ids;
  for (const auto& ev : events) {
    if (std::string(ev.category) == "agent" && ev.trace_id != 0) {
      trace_ids.insert(ev.trace_id);
    }
  }
  EXPECT_EQ(trace_ids.size(), 1u);
  EXPECT_EQ(*trace_ids.begin(), root->trace_id);
  EXPECT_GE(linked_fraction(events, "agent", *root), 0.95);

  // Detection ran probes, so the coordinator now holds clock-offset
  // estimates for the nodes that ponged.
  EXPECT_FALSE(tb.clock_offsets().empty());
}

TEST(TracePropagation, TcpExecuteYieldsMergedOffsetCorrectedTrace) {
  ec::RsCode code(6, 4);
  auto opts = small_options(11);
  opts.use_tcp = true;
  opts.num_stripes = 10;
  Testbed tb(opts, code);
  tb.flag_stf();
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_fastpr();
  ASSERT_FALSE(plan.rounds.empty());

  const auto events = traced_execute(tb, plan);
  const TraceEvent* root = find_root(events);
  ASSERT_NE(root, nullptr);
  EXPECT_GE(linked_fraction(events, "agent", *root), 0.95);

  // The merged export applies whatever offsets the coordinator's probe
  // traffic estimated (possibly none on a healthy run) and stays a
  // well-formed Chrome trace with node-attributed lanes.
  const std::string merged =
      telemetry::events_to_chrome_json(events, tb.clock_offsets());
  EXPECT_EQ(merged.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_NE(merged.find("\"coordinator.execute\""), std::string::npos);
  EXPECT_NE(merged.find("\"agent.stream_chunk\""), std::string::npos);
  EXPECT_NE(merged.find("\"trace\":"), std::string::npos);
}

#else  // !FASTPR_TELEMETRY_ENABLED

TEST(TracePropagation, SkippedWhenTelemetryCompiledOut) {
  GTEST_SKIP() << "telemetry compiled out: no spans to propagate";
}

#endif  // FASTPR_TELEMETRY_ENABLED

}  // namespace
}  // namespace fastpr::agent
