// Min-cost perfect matching vs an exhaustive oracle, plus the
// load-balanced destination selection built on it.
#include "matching/min_cost_matching.h"

#include <gtest/gtest.h>

#include <random>

#include "core/fastpr.h"
#include "core/repair_plan.h"
#include "util/rng.h"
#include "util/units.h"

namespace fastpr::matching {
namespace {

/// Exhaustive minimum-cost assignment (or nullopt if not saturable).
std::optional<double> brute_force_min_cost(
    const WeightedBipartiteGraph& g) {
  std::optional<double> best;
  std::vector<bool> used(static_cast<size_t>(g.left_count), false);
  const auto recurse = [&](auto&& self, int r, double cost) -> void {
    if (r == g.right_count()) {
      if (!best.has_value() || cost < *best) best = cost;
      return;
    }
    for (const auto& [l, c] : g.right_adj[static_cast<size_t>(r)]) {
      if (used[static_cast<size_t>(l)]) continue;
      used[static_cast<size_t>(l)] = true;
      self(self, r + 1, cost + c);
      used[static_cast<size_t>(l)] = false;
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

double assignment_cost(const WeightedBipartiteGraph& g,
                       const std::vector<int>& assignment) {
  double total = 0;
  for (int r = 0; r < g.right_count(); ++r) {
    for (const auto& [l, c] : g.right_adj[static_cast<size_t>(r)]) {
      if (l == assignment[static_cast<size_t>(r)]) {
        total += c;
        break;
      }
    }
  }
  return total;
}

TEST(MinCostMatching, TrivialCases) {
  WeightedBipartiteGraph g;
  g.left_count = 2;
  g.add_right_vertex({{0, 5.0}, {1, 1.0}});
  const auto m = min_cost_matching(g);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ((*m)[0], 1);  // cheaper left vertex
}

TEST(MinCostMatching, ForcedReroute) {
  // r0 prefers l0 (cost 1), but r1 can ONLY use l0: the solver must
  // reroute r0 to its pricier option.
  WeightedBipartiteGraph g;
  g.left_count = 2;
  g.add_right_vertex({{0, 1.0}, {1, 10.0}});
  g.add_right_vertex({{0, 2.0}});
  const auto m = min_cost_matching(g);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ((*m)[0], 1);
  EXPECT_EQ((*m)[1], 0);
  EXPECT_DOUBLE_EQ(assignment_cost(g, *m), 12.0);
}

TEST(MinCostMatching, InfeasibleReturnsNullopt) {
  WeightedBipartiteGraph g;
  g.left_count = 1;
  g.add_right_vertex({{0, 1.0}});
  g.add_right_vertex({{0, 1.0}});
  EXPECT_FALSE(min_cost_matching(g).has_value());
}

TEST(MinCostMatching, MatchesBruteForceOnRandomGraphs) {
  std::mt19937 rng(314);
  for (int trial = 0; trial < 200; ++trial) {
    WeightedBipartiteGraph g;
    g.left_count = 6;
    const int right = 1 + static_cast<int>(rng() % 5);
    for (int r = 0; r < right; ++r) {
      std::vector<std::pair<int, double>> adj;
      for (int l = 0; l < 6; ++l) {
        if (rng() % 2 == 0) {
          adj.emplace_back(l, static_cast<double>(rng() % 20));
        }
      }
      g.add_right_vertex(std::move(adj));
    }
    const auto oracle = brute_force_min_cost(g);
    const auto solved = min_cost_matching(g);
    ASSERT_EQ(oracle.has_value(), solved.has_value()) << "trial " << trial;
    if (!oracle.has_value()) continue;
    // Valid assignment...
    std::vector<bool> used(6, false);
    for (int r = 0; r < g.right_count(); ++r) {
      const int l = (*solved)[static_cast<size_t>(r)];
      ASSERT_GE(l, 0);
      ASSERT_FALSE(used[static_cast<size_t>(l)]);
      used[static_cast<size_t>(l)] = true;
    }
    // ...with optimal cost.
    EXPECT_NEAR(assignment_cost(g, *solved), *oracle, 1e-9)
        << "trial " << trial;
  }
}

TEST(BalancedPlacement, ReducesPostRepairLoadSpread) {
  // Same cluster, FastPR with and without load-aware destinations: the
  // balanced variant must end with an equal-or-tighter load spread.
  auto spread_after = [](bool balanced) {
    Rng rng(99);
    auto layout = cluster::StripeLayout::random(30, 6, 300, rng);
    cluster::ClusterState state(
        30, 2, cluster::BandwidthProfile{MBps(100), Gbps(1)});
    cluster::NodeId stf = 0;
    for (cluster::NodeId n = 1; n < 30; ++n) {
      if (layout.load(n) > layout.load(stf)) stf = n;
    }
    state.set_health(stf, cluster::NodeHealth::kSoonToFail);
    core::PlannerOptions opts;
    opts.k_repair = 4;
    opts.chunk_bytes = static_cast<double>(MB(64));
    opts.balance_destinations = balanced;
    core::FastPrPlanner planner(layout, state, opts);
    const auto plan = planner.plan_fastpr();
    core::validate_plan(plan, layout, state, 4);
    for (const auto& round : plan.rounds) {
      for (const auto& t : round.migrations) {
        layout.move_chunk(t.chunk, t.dst);
      }
      for (const auto& t : round.reconstructions) {
        layout.move_chunk(t.chunk, t.dst);
      }
    }
    int max_load = 0, min_load = 1 << 30;
    for (cluster::NodeId n = 0; n < 30; ++n) {
      if (n == stf) continue;
      max_load = std::max(max_load, layout.load(n));
      min_load = std::min(min_load, layout.load(n));
    }
    return max_load - min_load;
  };
  EXPECT_LE(spread_after(true), spread_after(false));
}

}  // namespace
}  // namespace fastpr::matching
