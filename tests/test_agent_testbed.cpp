// Testbed integration: full plans executed with real bytes over the
// shaped transport, byte-exact verification, failure injection.
#include "agent/testbed.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/repair_plan.h"
#include "ec/lrc_code.h"
#include "ec/rs_code.h"
#include "telemetry/metrics.h"
#include "util/buffer_pool.h"
#include "util/units.h"

namespace fastpr::agent {
namespace {

TestbedOptions small_options(uint64_t seed) {
  TestbedOptions opts;
  opts.num_storage = 12;
  opts.num_standby = 2;
  opts.disk_bytes_per_sec = 0;  // unthrottled: tests check bytes, not time
  opts.net_bytes_per_sec = 0;
  opts.chunk_bytes = 64 * kKiB;
  opts.packet_bytes = 16 * kKiB;
  opts.num_stripes = 30;
  opts.seed = seed;
  opts.round_timeout = std::chrono::milliseconds(30000);
  return opts;
}

struct Param {
  core::Scenario scenario;
  const char* strategy;
};

class TestbedExecutionTest : public ::testing::TestWithParam<Param> {};

TEST_P(TestbedExecutionTest, ExecutesAndVerifies) {
  const auto p = GetParam();
  ec::RsCode code(6, 4);
  Testbed tb(small_options(21), code);
  tb.flag_stf();
  auto planner = tb.make_planner(p.scenario);

  core::RepairPlan plan;
  if (std::string(p.strategy) == "fastpr") {
    plan = planner.plan_fastpr();
  } else if (std::string(p.strategy) == "reconstruction") {
    plan = planner.plan_reconstruction_only();
  } else {
    plan = planner.plan_migration_only();
  }
  validate_plan(plan, tb.layout(), tb.cluster(), 4);

  const auto report = tb.execute(plan);
  EXPECT_TRUE(report.success) << (report.errors.empty()
                                      ? ""
                                      : report.errors.front());
  EXPECT_EQ(report.repaired(), plan.total_repaired());
  EXPECT_EQ(report.fallback_reconstructions, 0);
  EXPECT_TRUE(tb.verify(plan));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TestbedExecutionTest,
    ::testing::Values(Param{core::Scenario::kScattered, "fastpr"},
                      Param{core::Scenario::kScattered, "reconstruction"},
                      Param{core::Scenario::kScattered, "migration"},
                      Param{core::Scenario::kHotStandby, "fastpr"},
                      Param{core::Scenario::kHotStandby, "reconstruction"},
                      Param{core::Scenario::kHotStandby, "migration"}),
    [](const auto& info) {
      return std::string(info.param.scenario == core::Scenario::kScattered
                             ? "scattered_"
                             : "hotstandby_") +
             info.param.strategy;
    });

TEST(Testbed, LrcPlansExecuteWithLocalRepairFanIn) {
  // LRC(4,2,2): data/local-parity chunks repair from k' = 2 helpers.
  ec::LrcCode code(4, 2, 2);
  auto opts = small_options(33);
  Testbed tb(opts, code);
  tb.flag_stf();
  auto planner = tb.make_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_fastpr();
  validate_plan(plan, tb.layout(), tb.cluster(), 2, &code);
  bool saw_local = false;
  for (const auto& round : plan.rounds) {
    for (const auto& task : round.reconstructions) {
      const size_t expected = static_cast<size_t>(
          code.repair_fetch_count(task.chunk.index));
      ASSERT_EQ(task.sources.size(), expected);
      if (expected == 2) {
        saw_local = true;
        // Locality: both helpers come from the lost chunk's candidates.
        const auto cands = code.helper_candidates(task.chunk.index);
        for (const auto& src : task.sources) {
          EXPECT_NE(std::find(cands.begin(), cands.end(),
                              src.chunk.index),
                    cands.end());
        }
      }
    }
  }
  EXPECT_TRUE(saw_local);
  const auto report = tb.execute(plan);
  EXPECT_TRUE(report.success);
  EXPECT_TRUE(tb.verify(plan));
}

TEST(Testbed, ChainExecutionByteExactAcrossSeeds) {
  // Differential check: a chain-strategy execution must repair the
  // exact same chunk set to the exact same bytes as fan-in. Both runs
  // verify against the same oracle, so oracle-exactness of both IS
  // byte-identity of their outputs.
  ec::RsCode code(6, 4);
  for (uint64_t seed : {21u, 77u, 1234u}) {
    for (auto scenario :
         {core::Scenario::kScattered, core::Scenario::kHotStandby}) {
      auto fanin_opts = small_options(seed);
      auto chain_opts = small_options(seed);
      chain_opts.repair_strategy = core::StrategyChoice::kChain;

      Testbed fanin(fanin_opts, code);
      fanin.flag_stf();
      const auto fanin_plan =
          fanin.make_planner(scenario).plan_fastpr();
      ASSERT_TRUE(fanin.execute(fanin_plan).success);
      EXPECT_TRUE(fanin.verify(fanin_plan));

#if FASTPR_TELEMETRY_ENABLED
      const int64_t forwards_before = telemetry::MetricsRegistry::global()
                                          .counter("agent.chain_forwards")
                                          .value();
#endif
      Testbed chain(chain_opts, code);
      chain.flag_stf();
      const auto chain_plan =
          chain.make_planner(scenario).plan_fastpr();
      // Same seed, same layout: the plans repair the same chunk set.
      ASSERT_EQ(chain_plan.total_repaired(), fanin_plan.total_repaired());
      const auto report = chain.execute(chain_plan);
      ASSERT_TRUE(report.success) << (report.errors.empty()
                                          ? ""
                                          : report.errors.front());
      EXPECT_TRUE(chain.verify(chain_plan))
          << "seed=" << seed
          << " scenario=" << core::to_string(scenario);
#if FASTPR_TELEMETRY_ENABLED
      // The chain run really did route packets through hop forwards.
      EXPECT_GT(telemetry::MetricsRegistry::global()
                    .counter("agent.chain_forwards")
                    .value(),
                forwards_before)
          << "seed=" << seed;
#endif
    }
  }
}

TEST(Testbed, ChainLrcExecutesAndVerifies) {
  // LRC(4,2,2): local repairs chain k' = 2 helpers, global-parity
  // repairs chain k = 4 — both shapes must decode byte-exactly.
  ec::LrcCode code(4, 2, 2);
  auto opts = small_options(33);
  opts.repair_strategy = core::StrategyChoice::kChain;
  Testbed tb(opts, code);
  tb.flag_stf();
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_fastpr();
  validate_plan(plan, tb.layout(), tb.cluster(), 2, &code);
  const auto report = tb.execute(plan);
  ASSERT_TRUE(report.success) << (report.errors.empty()
                                      ? ""
                                      : report.errors.front());
  EXPECT_TRUE(tb.verify(plan));
}

TEST(Testbed, ChainOverTcpEndToEnd) {
  // The chain protocol tolerates TCP's lack of cross-connection
  // ordering (packets can beat the kChainCmd; the early buffer absorbs
  // them).
  ec::RsCode code(6, 4);
  auto opts = small_options(55);
  opts.use_tcp = true;
  opts.num_stripes = 10;
  opts.repair_strategy = core::StrategyChoice::kChain;
  Testbed tb(opts, code);
  tb.flag_stf();
  const auto plan =
      tb.make_planner(core::Scenario::kScattered).plan_fastpr();
  const auto report = tb.execute(plan);
  ASSERT_TRUE(report.success) << (report.errors.empty()
                                      ? ""
                                      : report.errors.front());
  EXPECT_TRUE(tb.verify(plan));
}

TEST(Testbed, ChainPredictedRoundsUseChainModel) {
  // predict_rounds must price chain rounds with tr_chain, not Eq. (5).
  ec::RsCode code(6, 4);
  auto opts = small_options(66);
  opts.disk_bytes_per_sec = MBps(142) / 4;
  opts.net_bytes_per_sec = Gbps(5) / 4;
  opts.repair_strategy = core::StrategyChoice::kChain;
  Testbed tb(opts, code);
  tb.flag_stf();
  auto planner = tb.make_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_fastpr();
  const auto predicted =
      tb.predict_rounds(plan, core::Scenario::kScattered);
  ASSERT_EQ(predicted.size(), plan.rounds.size());
  const auto model = planner.cost_model();
  for (size_t i = 0; i < plan.rounds.size(); ++i) {
    if (plan.rounds[i].reconstructions.empty()) continue;
    EXPECT_EQ(plan.rounds[i].strategy, core::RepairStrategy::kChain);
    EXPECT_DOUBLE_EQ(predicted[i].duration_seconds,
                     model.round_time(predicted[i].cr, predicted[i].cm,
                                      core::RepairStrategy::kChain));
  }
}

TEST(Testbed, StfReadErrorFallsBackToReconstruction) {
  ec::RsCode code(6, 4);
  Testbed tb(small_options(44), code);
  const auto stf = tb.flag_stf();
  auto planner = tb.make_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_migration_only();

  // The STF node's disk develops read errors on two chunks mid-plan —
  // the coordinator must transparently reconstruct them instead.
  const auto chunks = tb.layout().chunks_on(stf);
  ASSERT_GE(chunks.size(), 2u);
  tb.store(stf).inject_read_error(chunks[0]);
  tb.store(stf).inject_read_error(chunks[1]);

  const auto report = tb.execute(plan);
  EXPECT_TRUE(report.success) << (report.errors.empty()
                                      ? ""
                                      : report.errors.front());
  EXPECT_EQ(report.fallback_reconstructions, 2);
  EXPECT_EQ(report.repaired(), plan.total_repaired());
  EXPECT_TRUE(tb.verify(plan));
}

TEST(Testbed, KilledDestinationRecoversViaRetry) {
  // A destination dies before the repair starts. The stalled round is
  // extended, the probe exposes the dead node, and the task is reissued
  // to an alternate destination — the repair still completes in full.
  ec::RsCode code(6, 4);
  auto opts = small_options(55);
  opts.round_timeout = std::chrono::milliseconds(2000);
  opts.probe_timeout = std::chrono::milliseconds(250);
  Testbed tb(opts, code);
  tb.flag_stf();
  auto planner = tb.make_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_fastpr();
  ASSERT_FALSE(plan.rounds.empty());
  ASSERT_FALSE(plan.rounds[0].reconstructions.empty());
  const auto victim = plan.rounds[0].reconstructions[0].dst;
  tb.agent(victim).kill();

  const auto report = tb.execute(plan);
  EXPECT_TRUE(report.success) << (report.errors.empty()
                                      ? ""
                                      : report.errors.front());
  EXPECT_TRUE(report.unrepaired.empty());
  EXPECT_GT(report.retries, 0);
  EXPECT_GT(report.round_extensions, 0);
  ASSERT_FALSE(report.failed_nodes.empty());
  EXPECT_NE(std::find(report.failed_nodes.begin(),
                      report.failed_nodes.end(), victim),
            report.failed_nodes.end());
  // Every completed repair verifies byte-for-byte at its *actual*
  // destination, and none landed on the dead node.
  EXPECT_TRUE(tb.verify(report, plan));
  for (const auto& done : report.completions) {
    EXPECT_NE(done.dst, victim);
  }
}

TEST(Testbed, RoundTimeoutListsUnrepairedChunks) {
  // With recovery disabled (no extensions, single attempt), a stalled
  // round must enumerate exactly which chunks were left unrepaired —
  // not just count them.
  ec::RsCode code(6, 4);
  auto opts = small_options(55);
  opts.round_timeout = std::chrono::milliseconds(1000);
  opts.max_round_extensions = 0;
  opts.max_attempts = 1;
  Testbed tb(opts, code);
  tb.flag_stf();
  auto planner = tb.make_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_fastpr();
  ASSERT_FALSE(plan.rounds.empty());
  ASSERT_FALSE(plan.rounds[0].reconstructions.empty());
  const auto& stalled = plan.rounds[0].reconstructions[0];
  tb.agent(stalled.dst).kill();

  const auto report = tb.execute(plan);
  EXPECT_FALSE(report.success);
  ASSERT_FALSE(report.unrepaired.empty());
  // The stalled task's chunk is listed, and every listed chunk is one
  // the plan was actually repairing.
  EXPECT_NE(std::find(report.unrepaired.begin(), report.unrepaired.end(),
                      stalled.chunk),
            report.unrepaired.end());
  std::vector<cluster::ChunkRef> planned;
  for (const auto& round : plan.rounds) {
    for (const auto& task : round.migrations) planned.push_back(task.chunk);
    for (const auto& task : round.reconstructions) {
      planned.push_back(task.chunk);
    }
  }
  for (const auto& chunk : report.unrepaired) {
    EXPECT_NE(std::find(planned.begin(), planned.end(), chunk),
              planned.end());
  }
  bool saw_timeout = false;
  for (const auto& error : report.errors) {
    if (error.find("timed out") != std::string::npos) saw_timeout = true;
  }
  EXPECT_TRUE(saw_timeout);
}

TEST(Testbed, TcpTransportEndToEnd) {
  ec::RsCode code(6, 4);
  auto opts = small_options(66);
  opts.use_tcp = true;
  opts.num_stripes = 15;
  Testbed tb(opts, code);
  tb.flag_stf();
  auto planner = tb.make_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_fastpr();
  const auto report = tb.execute(plan);
  EXPECT_TRUE(report.success) << (report.errors.empty()
                                      ? ""
                                      : report.errors.front());
  EXPECT_TRUE(tb.verify(plan));
}

TEST(Testbed, ShapedRunRespectsBandwidthFloor) {
  // With disk 50 MB/s, net 50 MB/s and ~1 MB chunks, migrating U chunks
  // cannot beat U × c/bn on the STF uplink (plus disk time).
  ec::RsCode code(6, 4);
  auto opts = small_options(77);
  opts.disk_bytes_per_sec = MBps(50);
  opts.net_bytes_per_sec = MBps(50);
  opts.chunk_bytes = 1 * kMiB;
  opts.packet_bytes = 256 * kKiB;
  opts.num_stripes = 20;
  Testbed tb(opts, code);
  const auto stf = tb.flag_stf();
  const int u = tb.layout().load(stf);
  auto planner = tb.make_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_migration_only();
  const auto report = tb.execute(plan);
  ASSERT_TRUE(report.success);
  const double uplink_floor =
      static_cast<double>(u) * static_cast<double>(1 * kMiB) / MBps(50);
  // Allow generous slack under the floor for burst tokens.
  EXPECT_GT(report.total_seconds, uplink_floor * 0.5);
  EXPECT_TRUE(tb.verify(plan));
}

TEST(Testbed, OddChunkPacketDivisionStillExact) {
  // chunk size not a multiple of the packet size: the tail packet is
  // short and every byte must still land in the right offset.
  ec::RsCode code(6, 4);
  auto opts = small_options(99);
  opts.chunk_bytes = 100 * 1000 + 7;  // deliberately odd
  opts.packet_bytes = 17 * 1000;
  opts.num_stripes = 12;
  Testbed tb(opts, code);
  tb.flag_stf();
  auto planner = tb.make_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_fastpr();
  const auto report = tb.execute(plan);
  EXPECT_TRUE(report.success) << (report.errors.empty()
                                      ? ""
                                      : report.errors.front());
  EXPECT_TRUE(tb.verify(plan));
}

TEST(Testbed, SteadyStateTransferRecyclesPayloadBuffers) {
  // Tentpole acceptance: the steady-state transfer path must not
  // allocate per packet. Payload buffers come from the global pool, so
  // after a small working set warms up, every further packet is a shelf
  // hit. Migration streams drop each payload right after the copy-in,
  // which makes the recycling easy to observe end to end.
  ec::RsCode code(6, 4);
  auto opts = small_options(111);
  opts.chunk_bytes = 128 * kKiB;
  opts.packet_bytes = 8 * kKiB;  // 16 packets per chunk
  Testbed tb(opts, code);
  tb.flag_stf();
  auto planner = tb.make_planner(core::Scenario::kScattered);
  const auto plan = planner.plan_migration_only();

  const auto before = BufferPool::global()->stats();
  const auto report = tb.execute(plan);
  ASSERT_TRUE(report.success);
  EXPECT_TRUE(tb.verify(plan));
  const auto after = BufferPool::global()->stats();

  const int64_t new_misses = after.misses - before.misses;
  const int64_t new_hits = after.hits - before.hits;
  const int64_t packets = static_cast<int64_t>(report.repaired()) * 16;
  ASSERT_GE(packets, 200);  // enough traffic for "steady state" to mean
                            // something
  // The allocation count is bounded by the concurrent working set
  // (streams × pipeline depth), NOT by the packet count.
  EXPECT_LE(new_misses, 64);
  EXPECT_GE(new_hits, packets - 64);
}

TEST(Testbed, TrafficAmplificationMatchesTheory) {
  // The paper's core premise in bytes: migrating U chunks moves ~U*c
  // over the network, reconstructing them moves ~k*U*c.
  ec::RsCode code(6, 4);
  auto opts = small_options(88);
  const double c = static_cast<double>(opts.chunk_bytes);

  int64_t migration_bytes = 0, reconstruction_bytes = 0;
  int repaired = 0;
  {
    agent::Testbed tb(opts, code);
    tb.flag_stf();
    auto planner = tb.make_planner(core::Scenario::kScattered);
    const auto plan = planner.plan_migration_only();
    const auto report = tb.execute(plan);
    ASSERT_TRUE(report.success);
    migration_bytes = report.network_bytes;
    repaired = report.repaired();
  }
  {
    agent::Testbed tb(opts, code);
    tb.flag_stf();
    auto planner = tb.make_planner(core::Scenario::kScattered);
    const auto plan = planner.plan_reconstruction_only();
    const auto report = tb.execute(plan);
    ASSERT_TRUE(report.success);
    reconstruction_bytes = report.network_bytes;
  }
  ASSERT_GT(repaired, 0);
  // Small slack for packet headers.
  EXPECT_NEAR(static_cast<double>(migration_bytes), repaired * c,
              repaired * c * 0.05);
  EXPECT_NEAR(static_cast<double>(reconstruction_bytes),
              4.0 * repaired * c, repaired * c * 0.2);
  EXPECT_NEAR(static_cast<double>(reconstruction_bytes) /
                  static_cast<double>(migration_bytes),
              4.0, 0.2);
}

}  // namespace
}  // namespace fastpr::agent
